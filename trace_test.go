// Integration tests for the telemetry surface: a Run under WithTrace must
// emit a well-formed JSONL stream whose game_iter events carry a monotone
// non-decreasing potential Φ — the convergence guarantee of the phase-2
// best-response dynamics (DESIGN.md §9) — and whose final state matches the
// returned Report exactly.
package imtao

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// traceEvent is the decoded form of one JSONL line. Unknown fields land in
// nothing; each assertion pulls what it needs from Raw.
type traceEvent struct {
	Seq   int64   `json:"seq"`
	TMs   float64 `json:"t_ms"`
	Event string  `json:"event"`
	Raw   map[string]json.RawMessage
}

func parseTrace(t *testing.T, buf *bytes.Buffer) []traceEvent {
	t.Helper()
	var events []traceEvent
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev traceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if err := json.Unmarshal(line, &ev.Raw); err != nil {
			t.Fatalf("invalid JSONL object %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func field[T any](t *testing.T, ev traceEvent, key string) T {
	t.Helper()
	raw, ok := ev.Raw[key]
	if !ok {
		t.Fatalf("event %q (seq %d) lacks field %q", ev.Event, ev.Seq, key)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("event %q field %q: %v", ev.Event, key, err)
	}
	return v
}

// TestTraceMonotonePhi runs the proposed method on both datasets and checks
// the convergence invariant end to end through the public API: every
// accepted game iteration raises Φ, no iteration ever lowers it, and the
// stream's final Φ equals the Report's.
func TestTraceMonotonePhi(t *testing.T) {
	for _, d := range []Dataset{SYN, GM} {
		t.Run(d.String(), func(t *testing.T) {
			p := DefaultParams(d)
			p.NumTasks, p.NumWorkers, p.NumCenters = 300, 80, 10

			var buf bytes.Buffer
			raw, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			in, err := Partition(raw)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(in, SeqBDC, WithTrace(&buf))
			if err != nil {
				t.Fatal(err)
			}
			events := parseTrace(t, &buf)
			if len(events) == 0 {
				t.Fatal("WithTrace produced no events")
			}

			// Stream integrity: seq is 1..N, t_ms non-decreasing.
			lastT := -1.0
			for i, ev := range events {
				if ev.Seq != int64(i+1) {
					t.Fatalf("event %d has seq %d", i, ev.Seq)
				}
				if ev.TMs < lastT {
					t.Fatalf("t_ms went backwards at seq %d: %v after %v", ev.Seq, ev.TMs, lastT)
				}
				lastT = ev.TMs
			}

			// The pipeline events appear exactly once each, in order.
			order := []string{"run_start", "phase1", "phase2", "run_end"}
			pos := map[string]int{}
			for i, ev := range events {
				if _, dup := pos[ev.Event]; dup && ev.Event != "game_iter" && ev.Event != "phase1_center" {
					t.Fatalf("duplicate %q event", ev.Event)
				}
				if _, seen := pos[ev.Event]; !seen {
					pos[ev.Event] = i
				}
			}
			for i := 1; i < len(order); i++ {
				a, oka := pos[order[i-1]]
				b, okb := pos[order[i]]
				if !oka || !okb {
					t.Fatalf("missing pipeline event %q or %q (have %v)", order[i-1], order[i], pos)
				}
				if a >= b {
					t.Fatalf("%q (seq %d) not before %q (seq %d)", order[i-1], a+1, order[i], b+1)
				}
			}
			for _, name := range []string{"phase1", "phase2", "run_end"} {
				if ms := field[float64](t, events[pos[name]], "duration_ms"); ms < 0 {
					t.Fatalf("%s duration_ms negative: %v", name, ms)
				}
			}
			if m := field[string](t, events[pos["run_start"]], "method"); m != "Seq-BDC" {
				t.Fatalf("run_start method = %q", m)
			}

			// One phase1_center event per center, ρ matching Phase1Ratios.
			var centers int
			for _, ev := range events {
				if ev.Event != "phase1_center" {
					continue
				}
				ci := field[int](t, ev, "center")
				rho := field[float64](t, ev, "rho")
				if got := rep.Phase1Ratios[ci]; got != rho {
					t.Fatalf("center %d trace rho %v, report %v", ci, rho, got)
				}
				centers++
			}
			if centers != p.NumCenters {
				t.Fatalf("%d phase1_center events for %d centers", centers, p.NumCenters)
			}

			// Convergence: Φ starts at the phase-1 potential and never
			// decreases; accepted iterations strictly increase it.
			phi := Phi(rep.Phase1Ratios)
			iters := 0
			for _, ev := range events {
				if ev.Event != "game_iter" {
					continue
				}
				iters++
				next := field[float64](t, ev, "phi")
				accepted := field[bool](t, ev, "accepted")
				if next < phi {
					t.Fatalf("iteration %d decreased phi: %v -> %v", iters, phi, next)
				}
				if accepted && !(next > phi) {
					t.Fatalf("accepted iteration %d did not raise phi: %v -> %v", iters, phi, next)
				}
				rhos := field[[]float64](t, ev, "rhos")
				if len(rhos) != p.NumCenters {
					t.Fatalf("iteration %d carries %d ratios for %d centers", iters, len(rhos), p.NumCenters)
				}
				if got := Phi(rhos); got != next {
					t.Fatalf("iteration %d phi field %v disagrees with its rhos (%v)", iters, next, got)
				}
				phi = next
			}
			if iters != rep.Iterations {
				t.Fatalf("trace has %d game_iter events, report %d iterations", iters, rep.Iterations)
			}
			if iters == 0 {
				t.Fatal("instance converged without a single game iteration; no convergence to observe")
			}
			if want := Phi(rep.Ratios); phi != want {
				t.Fatalf("final trace phi %v, report phi %v", phi, want)
			}
		})
	}
}

// TestTraceMatchesReportTrace cross-checks the two telemetry surfaces
// against each other: the JSONL game_iter stream and Report.Trace must tell
// the same story step for step.
func TestTraceMatchesReportTrace(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 200, 60, 8
	var buf bytes.Buffer
	rep, err := Solve(p, SeqBDC, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var steps []traceEvent
	for _, ev := range parseTrace(t, &buf) {
		if ev.Event == "game_iter" {
			steps = append(steps, ev)
		}
	}
	if len(steps) != len(rep.Trace) {
		t.Fatalf("%d game_iter events vs %d trace steps", len(steps), len(rep.Trace))
	}
	for i, ev := range steps {
		ts := rep.Trace[i]
		if got := field[int](t, ev, "iter"); got != ts.Iteration {
			t.Errorf("step %d: iter %d vs %d", i, got, ts.Iteration)
		}
		if got := field[bool](t, ev, "accepted"); got != ts.Accepted {
			t.Errorf("step %d: accepted %v vs %v", i, got, ts.Accepted)
		}
		if got := field[float64](t, ev, "phi"); got != ts.Phi {
			t.Errorf("step %d: phi %v vs %v", i, got, ts.Phi)
		}
		if got := field[int](t, ev, "assigned"); got != ts.Assigned {
			t.Errorf("step %d: assigned %d vs %d", i, got, ts.Assigned)
		}
		if got := field[float64](t, ev, "unfairness"); got != ts.Unfairness {
			t.Errorf("step %d: unfairness %v vs %v", i, got, ts.Unfairness)
		}
	}
}

// TestWriteMetrics smoke-checks the Prometheus snapshot after a run: the
// pipeline counters must be present and the exposition format well-formed
// (every non-comment line is "name[{labels}] value").
func TestWriteMetrics(t *testing.T) {
	if _, err := Solve(DefaultParams(SYN), SeqBDC); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"imtao_runs_total",
		"imtao_partitions_total",
		"imtao_assign_calls_total",
		"imtao_collab_iterations_total",
		"imtao_env_info",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics snapshot lacks %s", name)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if n := len(strings.Fields(line)); n != 2 {
			t.Errorf("malformed exposition line %q (%d fields)", line, n)
		}
	}
}

// ExampleWithTrace shows the one-liner for capturing a convergence trace.
func ExampleWithTrace() {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers = 100, 30
	var trace bytes.Buffer
	rep, _ := Solve(p, SeqBDC, WithTrace(&trace))
	fmt.Println(rep.Iterations == strings.Count(trace.String(), `"event":"game_iter"`))
	// Output: true
}

// TestTraceSeqUnderParallelism drives the JSONL encoder from every emitter
// the pipeline has — phase-1 center workers and the phase-2 trial pool —
// and checks the stream survives the concurrency: every line is valid
// standalone JSON and seq is exactly 1..N with no gap, duplicate, or
// reordering. Run under -race in CI, this is the torn-write regression test
// for the encoder's internal serialization.
func TestTraceSeqUnderParallelism(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 300, 80, 10
	var buf bytes.Buffer
	if _, err := Solve(p, SeqBDC, WithTrace(&buf), WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, &buf)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for i, ev := range events {
		if want := int64(i + 1); ev.Seq != want {
			t.Fatalf("line %d: seq %d, want %d (gap, duplicate, or reorder)", i, ev.Seq, want)
		}
	}
	var sawCenter, sawIter bool
	for _, ev := range events {
		switch ev.Event {
		case "phase1_center":
			sawCenter = true
		case "game_iter":
			sawIter = true
		}
	}
	if !sawCenter || !sawIter {
		t.Errorf("stream lacks concurrent emitters: phase1_center=%v game_iter=%v",
			sawCenter, sawIter)
	}
}

// TestWithTracerTimeline records a parallel run through the public tracing
// API and checks the span tree and its Chrome export: the hierarchy
// run → phase1 → phase1_center and run → phase2 → game_iter → trial must be
// present, and WriteChromeTrace must emit valid JSON carrying every span.
func TestWithTracerTimeline(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 300, 80, 10
	tr := NewTracer(0)
	rep, err := Solve(p, SeqBDC, WithTracer(tr), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if tr.Dropped() != 0 {
		t.Fatalf("%d spans dropped at default capacity", tr.Dropped())
	}
	names := make(map[SpanID]string, len(spans))
	parents := make(map[SpanID]SpanID, len(spans))
	counts := make(map[string]int)
	for _, s := range spans {
		names[s.ID] = s.Name
		parents[s.ID] = s.Parent
		counts[s.Name]++
	}
	chains := make(map[string]bool)
	for id := range names {
		var path []string
		for cur := id; cur != 0; cur = parents[cur] {
			path = append([]string{names[cur]}, path...)
		}
		chains[strings.Join(path, "→")] = true
	}
	for _, want := range []string{
		"run→phase1→phase1_center",
		"run→phase2→game_iter→trial",
	} {
		if !chains[want] {
			t.Errorf("span tree lacks %s; chains: %v", want, chains)
		}
	}
	if counts["phase1_center"] != p.NumCenters {
		t.Errorf("%d phase1_center spans, want %d", counts["phase1_center"], p.NumCenters)
	}
	if counts["game_iter"] != rep.Iterations {
		t.Errorf("%d game_iter spans vs %d report iterations", counts["game_iter"], rep.Iterations)
	}

	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is invalid JSON: %v", err)
	}
	var xEvents int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			xEvents++
		}
	}
	if xEvents != len(spans) {
		t.Errorf("export carries %d X events for %d spans", xEvents, len(spans))
	}
}
