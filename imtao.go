// Package imtao is the public API of this reproduction of "Optimizing
// Multi-Center Collaboration for Task Assignment in Spatial Crowdsourcing"
// (ICDE 2025): the Collaborative Multi-Center Task Assignment (CMCTA)
// problem and the Iterative Multi-center Task Assignment and Optimization
// (IMTAO) framework.
//
// # Overview
//
// A spatial-crowdsourcing platform runs several distribution centers. Every
// task and worker belongs to the center whose Voronoi cell contains it.
// IMTAO assigns tasks in two phases: an efficient per-center sequential
// assignment, followed by a game-theoretic inter-center workforce transfer
// that dispatches surplus workers to overloaded centers, maximizing the
// number of assigned tasks while minimizing the unfairness of per-center
// assignment ratios.
//
// # Quick start
//
//	params := imtao.DefaultParams(imtao.SYN)
//	report, err := imtao.Solve(params, imtao.SeqBDC)
//	if err != nil { ... }
//	fmt.Println(report.Assigned, report.Unfairness)
//
// Custom scenarios are assembled with a Builder:
//
//	b := imtao.NewBuilder(2000, 2000, 30 /* km/h */)
//	b.AddCenter(500, 500)
//	b.AddCenter(1500, 500)
//	b.AddWorker(480, 520, 4)
//	b.AddTask(520, 480, 1.0, 1.0)
//	in, err := b.Build() // partitioned instance
//	report, err := imtao.Run(in, imtao.SeqBDC)
//
// The eight method presets of the paper — {Seq, Opt} × {BDC, RBDC, DC,
// w/o-C} — are exposed as constants; SeqBDC is the paper's proposed method.
package imtao

import (
	"io"
	"time"

	"imtao/internal/collab"
	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/roadnet"
	"imtao/internal/workload"
)

// Re-exported model vocabulary. These aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// Instance is a complete CMCTA problem instance.
	Instance = model.Instance
	// Task is a spatial task s = (c, l, e, r).
	Task = model.Task
	// Worker is a worker w = (c, l, maxT).
	Worker = model.Worker
	// Center is a distribution center c = (l, S, W).
	Center = model.Center
	// Solution is a platform-wide task assignment with its transfers.
	Solution = model.Solution
	// Route is one worker's delivery run.
	Route = model.Route
	// Transfer is one inter-center workforce dispatch.
	Transfer = model.Transfer
	// TaskID identifies a task.
	TaskID = model.TaskID
	// WorkerID identifies a worker.
	WorkerID = model.WorkerID
	// CenterID identifies a center.
	CenterID = model.CenterID
	// Method is a method combination such as Seq-BDC.
	Method = core.Method
	// Report is the outcome of one IMTAO run.
	Report = core.Report
	// Params configures the dataset generators.
	Params = workload.Params
	// Dataset selects a generator family (GM or SYN).
	Dataset = workload.Dataset
	// Point is a 2-D location.
	Point = geo.Point
	// Rect is an axis-aligned rectangle (service areas, bounds).
	Rect = geo.Rect
	// Utilization summarises workforce usage of a solution.
	Utilization = metrics.Utilization
	// TravelMetric is a pluggable travel-time model (see NewRoadNetwork).
	TravelMetric = model.TravelMetric
	// RoadNetwork is a grid road network usable as an Instance's Metric.
	RoadNetwork = roadnet.Network
	// TraceStep is one phase-2 game iteration in Report.Trace.
	TraceStep = collab.TraceStep
	// Observer receives structured telemetry events from a run (see
	// WithObserver). obs.Nop — the default — costs nothing.
	Observer = obs.Observer
	// Field is one key/value pair attached to an Observer event.
	Field = obs.Field
	// Tracer records hierarchical timing spans from a run (see WithTracer).
	Tracer = obs.Tracer
	// SpanID identifies one recorded span; 0 is "no parent".
	SpanID = obs.SpanID
	// FlightRecorder is a fixed-size ring of the most recent telemetry
	// events, dumpable after the fact (see NewFlightRecorder).
	FlightRecorder = obs.FlightRecorder
	// Quantile is a lock-free exact-rank latency recorder exported as a
	// Prometheus summary (see docs/OBSERVABILITY.md).
	Quantile = obs.Quantile
	// QuantileSnapshot is a point-in-time copy of a Quantile recorder.
	QuantileSnapshot = obs.QuantileSnapshot
	// RuntimeSampler periodically publishes Go runtime vitals (GC pauses,
	// heap, goroutines, scheduler latency) as imtao_runtime_* gauges and
	// runtime_sample telemetry events (see NewRuntimeSampler).
	RuntimeSampler = obs.RuntimeSampler
	// RuntimeVitals is one runtime health snapshot from a RuntimeSampler.
	RuntimeVitals = obs.RuntimeVitals
	// ProfileRing is a continuous profiler keeping a bounded on-disk ring of
	// periodic CPU and heap pprof captures (see NewProfileRing).
	ProfileRing = obs.ProfileRing
	// Ledger is one run's assignment-provenance record: the per-task decision
	// ledger captured by WithProvenance and returned on Report.Provenance
	// (see docs/PROVENANCE.md).
	Ledger = provenance.Ledger
	// Certificate is a machine-checkable equilibrium certificate of a run's
	// final solution (Ledger.Cert); Certificate.Verify re-validates it
	// offline without re-running the phase-2 game.
	Certificate = provenance.Certificate
)

// Dataset constants.
const (
	// SYN is the uniform synthetic dataset of the paper.
	SYN = workload.SYN
	// GM is the simulated gMission-like clustered dataset.
	GM = workload.GM
)

// Method presets matching the paper's evaluated combinations.
var (
	// SeqBDC is the paper's proposed method: sequential assignment plus
	// bi-directional game-theoretic collaboration.
	SeqBDC = Method{Assigner: core.Seq, Collab: core.BDC}
	// SeqRBDC randomizes recipient selection.
	SeqRBDC = Method{Assigner: core.Seq, Collab: core.RBDC}
	// SeqDC uses decomposed (leftover-only) collaboration.
	SeqDC = Method{Assigner: core.Seq, Collab: core.DC}
	// SeqWoC disables collaboration.
	SeqWoC = Method{Assigner: core.Seq, Collab: core.WoC}
	// OptBDC pairs the optimal per-center assigner with BDC.
	OptBDC = Method{Assigner: core.Opt, Collab: core.BDC}
	// OptRBDC pairs the optimal assigner with random recipients.
	OptRBDC = Method{Assigner: core.Opt, Collab: core.RBDC}
	// OptDC pairs the optimal assigner with decomposed collaboration.
	OptDC = Method{Assigner: core.Opt, Collab: core.DC}
	// OptWoC is the optimal assigner without collaboration.
	OptWoC = Method{Assigner: core.Opt, Collab: core.WoC}
)

// Methods returns all eight method presets in the paper's order.
func Methods() []Method { return core.Methods() }

// ParseMethod parses method names such as "Seq-BDC" (case-insensitive).
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// DefaultParams returns the paper's Table I default parameters for a dataset.
func DefaultParams(d Dataset) Params { return workload.Defaults(d) }

// Generate builds an unpartitioned instance from generator parameters.
func Generate(p Params) (*Instance, error) { return workload.Generate(p) }

// Partition attaches every task and worker to its nearest center via a
// Voronoi diagram over center locations (paper Algorithm 1), returning a new
// instance.
func Partition(in *Instance) (*Instance, error) {
	out, _, err := core.Partition(in)
	return out, err
}

// RunOption customises Run.
type RunOption func(*core.Config)

// WithSeed sets the seed used by randomized methods (RBDC recipients).
func WithSeed(seed int64) RunOption {
	return func(c *core.Config) { c.Seed = seed }
}

// WithOptBudget bounds the per-center search time of the Opt assigner.
// Zero (the default) runs the exact search to completion.
func WithOptBudget(d time.Duration) RunOption {
	return func(c *core.Config) { c.OptBudget = d }
}

// WithParallelism bounds the worker goroutines of the IMTAO pipeline:
// phase-1 per-center assignment runs concurrently across centers, and
// phase-2 best-response trials run concurrently within each game iteration
// (with trial results memoized across iterations). The default, 0, uses
// GOMAXPROCS; 1 forces the legacy serial pipeline. The output is
// bit-identical at every setting — see DESIGN.md §8 for the determinism
// contract.
func WithParallelism(n int) RunOption {
	return func(c *core.Config) { c.Parallelism = n }
}

// WithShards routes the phase-2 collaboration game through the
// region-sharded engine (DESIGN.md §15–16): centers are partitioned into n
// geographic shards with seeded task-weighted k-means, best-response
// dynamics run concurrently per shard over disjoint home-shard worker
// pools, and a component-parallel exchange game settles the boundary
// workers and drives the merged state to a global Nash equilibrium. When
// the worker-overlap interference cut between shards is empty, the result
// is bit-identical to the unsharded engine; methods the sharded engine
// cannot prove safe for (RBDC, budgeted Opt) fall back to the ordinary
// game. WithShards(0) turns on auto-tuning: the engine probes a shard-count
// ladder against the instance's interference profile and picks the count
// with the smallest modeled critical path (the decision is recorded in
// Report.Shard.Auto). 1 — and not calling WithShards at all — keeps the
// single-game engine.
func WithShards(n int) RunOption {
	return func(c *core.Config) {
		if n == 0 {
			c.Shards = core.ShardAuto
		} else {
			c.Shards = n
		}
	}
}

// WithShardParallelism bounds the goroutines playing shard games
// concurrently under WithShards: 0 (the default) means GOMAXPROCS, 1 plays
// the shards serially. The output is bit-identical at every setting.
func WithShardParallelism(n int) RunOption {
	return func(c *core.Config) { c.ShardParallelism = n }
}

// WithObserver streams structured telemetry events from the run — pipeline
// phase spans (run_start, phase1, phase2, run_end), per-center phase-1
// summaries, and one game_iter event per phase-2 best-response iteration
// carrying the potential Φ and the full ratio vector ρ. The default observer
// is a no-op; event names and fields are catalogued in DESIGN.md §9.
func WithObserver(o Observer) RunOption {
	return func(c *core.Config) { c.Observer = o }
}

// WithTrace streams the run's telemetry events to w as JSON Lines, one
// object per event:
//
//	{"seq":7,"t_ms":1.532,"event":"game_iter","iter":1,"phi":17.25,...}
//
// It is WithObserver with the built-in JSONL encoder. Writes are serialized
// internally, so w need not be safe for concurrent use.
func WithTrace(w io.Writer) RunOption {
	return WithObserver(obs.NewJSONL(w))
}

// NewJSONLObserver returns the JSON Lines encoder WithTrace uses as a
// standalone Observer, for composing with others via MultiObserver.
func NewJSONLObserver(w io.Writer) Observer { return obs.NewJSONL(w) }

// NewLedger returns an empty provenance ledger for WithProvenance.
func NewLedger() *Ledger { return provenance.NewLedger() }

// WithProvenance attaches a decision ledger to the run: phase-1 routes and
// deadline-rejection scans, every phase-2 best-response iteration with its
// candidate trials, pruning and Δρ/ΔΦ evidence, shard and boundary-exchange
// structure, the final routes with per-task arrival times, and (for
// Sequential collaboration runs) an equilibrium certificate. The filled
// ledger is returned on Report.Provenance; stream it to a file with
// Ledger.WriteTo and query it with cmd/imtao-explain. A run without
// WithProvenance pays a single nil check per instrumented site — the hot
// paths stay zero-allocation (see docs/PROVENANCE.md).
func WithProvenance(l *Ledger) RunOption {
	return func(c *core.Config) { c.Prov = l }
}

// NewTracer builds a span recorder for WithTracer. maxSpans bounds the
// in-memory trace (≤ 0 selects the default, obs.DefaultTraceSpans); once
// full, further spans are counted as dropped rather than grown.
func NewTracer(maxSpans int) *Tracer { return obs.NewTracer(maxSpans) }

// WithTracer records the run as a tree of timing spans: the run itself,
// phase 1 and each per-center assignment, phase 2 with one span per game
// iteration and per evaluated trial, and every road-network shortest-path
// search. After the run, write the timeline with Tracer.WriteChromeTrace —
// the output opens in ui.perfetto.dev or chrome://tracing. A nil tracer
// (the default) costs nothing on any instrumented path.
func WithTracer(t *Tracer) RunOption {
	return func(c *core.Config) { c.Tracer = t }
}

// NewFlightRecorder builds an Observer that retains the last n telemetry
// events (≤ 0 selects the default, obs.DefaultFlightEvents) in a ring
// buffer; dump them with FlightRecorder.WriteTo when something goes wrong.
// Combine with another observer via MultiObserver.
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// MultiObserver fans each telemetry event out to every given observer, in
// order — e.g. a JSONL stream plus a FlightRecorder. Nil and no-op entries
// are dropped; with none left it returns the no-op observer.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// WriteMetrics writes a point-in-time snapshot of the process-wide metrics
// registry (run, assignment, game, worker-pool, and road-network counters)
// to w in Prometheus text exposition format.
func WriteMetrics(w io.Writer) error {
	obs.RecordEnvInfo(obs.Default)
	_, err := obs.Default.WriteTo(w)
	return err
}

// EnableTiming turns on the fine-grained latency histograms (road-network
// lock wait, trial-pool queue wait) that need a clock read on hot paths.
// They are off by default so a no-op-observed run stays at zero overhead.
func EnableTiming(on bool) { obs.EnableTiming(on) }

// NewRuntimeSampler builds a runtime-vitals sampler publishing on the
// process-wide metrics registry every interval (≤ 0 selects the default,
// obs.DefaultSampleInterval). o, when non-nil, additionally receives one
// runtime_sample event per tick — pass a FlightRecorder or JSONL observer to
// interleave vitals with pipeline telemetry. Call Start to begin sampling
// and Stop for a clean, goroutine-free shutdown.
func NewRuntimeSampler(interval time.Duration, o Observer) *RuntimeSampler {
	return obs.NewRuntimeSampler(interval, obs.Default, o)
}

// NewProfileRing builds a continuous profiler writing periodic CPU and heap
// pprof captures into dir, retaining the most recent keep of each kind
// (≤ 0 selects obs.DefaultProfileKeep). Start launches the periodic loop;
// DumpNow writes an out-of-cycle heap profile (e.g. on panic) that pruning
// never removes.
func NewProfileRing(dir string, interval time.Duration, keep int) (*ProfileRing, error) {
	return obs.NewProfileRing(dir, interval, 0, keep, obs.Default)
}

// Phi computes the exact potential Φ = Σρ_i of the phase-2 transfer game
// over a ratio vector. Along the accepted moves of Algorithm 3 it is
// monotone non-decreasing, which is what makes the best-response dynamics
// converge; Report.Trace records it per iteration.
func Phi(rhos []float64) float64 { return metrics.Phi(rhos) }

// Run executes the IMTAO pipeline on a partitioned instance with the given
// method.
func Run(in *Instance, m Method, opts ...RunOption) (*Report, error) {
	cfg := core.Config{Method: m}
	for _, o := range opts {
		o(&cfg)
	}
	return core.Run(in, cfg)
}

// NewRoadNetwork builds a grid road network over the instance bounds that
// can be installed as Instance.Metric, replacing straight-line travel with
// street-constrained shortest paths (optionally congested via its
// SetCongestion methods).
func NewRoadNetwork(bounds geo.Rect, nx, ny int, speed float64) (*RoadNetwork, error) {
	return roadnet.New(bounds, nx, ny, speed)
}

// ComputeUtilization derives workforce statistics (active workers, route
// hours, capacity usage) from a solution.
func ComputeUtilization(in *Instance, s *Solution) Utilization {
	return metrics.ComputeUtilization(in, s)
}

// Unfairness computes the paper's collaboration unfairness U_ρ (Eq. 3) over
// a ratio vector; Gini and Jain are alternative fairness indices.
func Unfairness(rhos []float64) float64 { return metrics.Unfairness(rhos) }

// Gini computes the Gini coefficient of the values.
func Gini(values []float64) float64 { return metrics.Gini(values) }

// Jain computes Jain's fairness index of the values.
func Jain(values []float64) float64 { return metrics.Jain(values) }

// Solve is the one-call convenience: generate a dataset, partition it, and
// run the method.
func Solve(p Params, m Method, opts ...RunOption) (*Report, error) {
	raw, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	in, _, err := core.Partition(raw)
	if err != nil {
		return nil, err
	}
	return Run(in, m, opts...)
}
