// Benchmarks regenerating every table and figure of the paper's evaluation
// section. Each BenchmarkFigN corresponds to paper Fig. N; sub-benchmarks
// name the swept parameter value and the method, so
//
//	go test -bench 'Fig3' -benchmem
//
// prints one timing series per figure line. The figure *data* (assigned
// tasks, unfairness) is produced by cmd/imtao-bench; these benchmarks cover
// the CPU-time dimension of each figure and keep every reproduction path
// exercised under `go test -bench`.
package imtao

import (
	"fmt"
	"testing"
	"time"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/experiments"
)

// prepared caches partitioned instances across benchmark iterations.
var prepared = map[string]*Instance{}

func instanceFor(b *testing.B, d Dataset, mutate func(*Params)) *Instance {
	b.Helper()
	p := DefaultParams(d)
	if mutate != nil {
		mutate(&p)
	}
	key := fmt.Sprintf("%v/%+v", d, p)
	if in, ok := prepared[key]; ok {
		return in
	}
	raw, err := Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		b.Fatal(err)
	}
	prepared[key] = in
	return in
}

func benchMethod(b *testing.B, in *Instance, m Method, opts ...RunOption) {
	b.Helper()
	var assigned int
	for i := 0; i < b.N; i++ {
		rep, err := Run(in, m, opts...)
		if err != nil {
			b.Fatal(err)
		}
		assigned = rep.Assigned
	}
	b.ReportMetric(float64(assigned), "tasks")
}

// benchSweep runs one figure's sweep: for every swept value and every Seq
// method, one sub-benchmark.
func benchSweep(b *testing.B, id string) {
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for _, v := range e.SweepValues {
		in := instanceFor(b, e.Dataset, func(p *Params) { e.Apply(p, v) })
		for _, m := range experiments.SeqMethods() {
			b.Run(fmt.Sprintf("%s=%g/%s", e.SweepName, v, m), func(b *testing.B) {
				benchMethod(b, in, m, WithSeed(1))
			})
		}
	}
}

// BenchmarkTableIDefaults times the proposed Seq-BDC at the Table I default
// parameter setting on both datasets.
func BenchmarkTableIDefaults(b *testing.B) {
	for _, d := range []Dataset{GM, SYN} {
		in := instanceFor(b, d, nil)
		b.Run(d.String(), func(b *testing.B) { benchMethod(b, in, SeqBDC) })
	}
}

// BenchmarkFig3 regenerates the |S| sweep on GM (paper Fig. 3).
func BenchmarkFig3(b *testing.B) { benchSweep(b, "fig3") }

// BenchmarkFig4 regenerates the |S| sweep on SYN (paper Fig. 4).
func BenchmarkFig4(b *testing.B) { benchSweep(b, "fig4") }

// BenchmarkFig5 regenerates the |W| sweep on GM (paper Fig. 5).
func BenchmarkFig5(b *testing.B) { benchSweep(b, "fig5") }

// BenchmarkFig6 regenerates the |W| sweep on SYN (paper Fig. 6).
func BenchmarkFig6(b *testing.B) { benchSweep(b, "fig6") }

// BenchmarkFig7 regenerates the |C| sweep on GM (paper Fig. 7).
func BenchmarkFig7(b *testing.B) { benchSweep(b, "fig7") }

// BenchmarkFig8 regenerates the |C| sweep on SYN (paper Fig. 8).
func BenchmarkFig8(b *testing.B) { benchSweep(b, "fig8") }

// BenchmarkFig9 regenerates the e sweep on GM (paper Fig. 9).
func BenchmarkFig9(b *testing.B) { benchSweep(b, "fig9") }

// BenchmarkFig10 regenerates the e sweep on SYN (paper Fig. 10).
func BenchmarkFig10(b *testing.B) { benchSweep(b, "fig10") }

// BenchmarkFig11Convergence times the full Seq-BDC convergence run at
// |C| = 50 (paper Fig. 11) and reports the number of game iterations.
func BenchmarkFig11Convergence(b *testing.B) {
	for _, d := range []Dataset{GM, SYN} {
		in := instanceFor(b, d, func(p *Params) { p.NumCenters = 50 })
		b.Run(d.String(), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				rep, err := Run(in, SeqBDC)
				if err != nil {
					b.Fatal(err)
				}
				iters = rep.Iterations
			}
			b.ReportMetric(float64(iters), "game-iters")
		})
	}
}

// BenchmarkSeqVsOptCPU reproduces the CPU-magnitude comparison of
// Figs. 3(c)/4(c): the Seq assigner versus the exact Opt baseline on a
// reduced instance (the paper's full-size Opt runs take thousands of
// seconds; the gap, not the absolute number, is the claim).
func BenchmarkSeqVsOptCPU(b *testing.B) {
	in := instanceFor(b, SYN, func(p *Params) {
		p.NumTasks, p.NumWorkers, p.NumCenters = 100, 25, 5
	})
	b.Run("Seq-w/o-C", func(b *testing.B) { benchMethod(b, in, SeqWoC) })
	b.Run("Opt-w/o-C", func(b *testing.B) {
		benchMethod(b, in, OptWoC, WithOptBudget(2*time.Second))
	})
}

// BenchmarkAblationWorkerOrder compares the paper's marginal-first worker
// ordering in Algorithm 2 against the alternatives (DESIGN.md §6).
func BenchmarkAblationWorkerOrder(b *testing.B) {
	in := instanceFor(b, SYN, nil)
	for _, ord := range []struct {
		name string
		kind int
	}{{"marginal-first", 0}, {"nearest-first", 1}, {"by-id", 2}} {
		b.Run(ord.name, func(b *testing.B) {
			var assigned int
			for i := 0; i < b.N; i++ {
				assigned = runWithWorkerOrder(in, ord.kind)
			}
			b.ReportMetric(float64(assigned), "tasks")
		})
	}
}

// BenchmarkPartition times the Voronoi service-area partition (Algorithm 1)
// at the paper's center-count extremes.
func BenchmarkPartition(b *testing.B) {
	for _, nc := range []int{20, 60} {
		p := DefaultParams(SYN)
		p.NumCenters = nc
		raw, err := Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// runWithWorkerOrder executes phase 1 with a specific worker ordering and
// returns the assigned count (ablation helper).
func runWithWorkerOrder(in *Instance, kind int) int {
	total := 0
	for ci := range in.Centers {
		c := &in.Centers[ci]
		res := assign.SequentialOpt(in, c, c.Workers, c.Tasks,
			assign.Options{Order: assign.WorkerOrder(kind)})
		total += res.AssignedCount()
	}
	return total
}

// BenchmarkIndexChoice compares the nearest-task index backing Algorithm 2
// (DESIGN.md §6): the default uniform grid versus a linear scan, at the
// Table I default scale.
func BenchmarkIndexChoice(b *testing.B) {
	in := instanceFor(b, SYN, nil)
	for _, variant := range []struct {
		name   string
		linear bool
	}{{"grid", false}, {"linear", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for ci := range in.Centers {
					c := &in.Centers[ci]
					assign.SequentialOpt(in, c, c.Workers, c.Tasks,
						assign.Options{LinearScan: variant.linear})
				}
			}
		})
	}
}

// BenchmarkCollaborationGame isolates phase 2: the best-response loop on a
// prepared phase-1 state at Table I defaults.
func BenchmarkCollaborationGame(b *testing.B) {
	in := instanceFor(b, SYN, nil)
	phase1 := make([]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		c := &in.Centers[ci]
		phase1[ci] = assign.Sequential(in, c, c.Workers, c.Tasks)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		collab.Run(in, phase1, collab.Config{})
	}
}

// BenchmarkParallelism sweeps the engine's worker-pool bound on the
// proposed Seq-BDC at the Table I defaults of both datasets. P=1 is the
// legacy serial pipeline; the output is bit-identical at every setting, so
// the only difference the sweep can show is wall-clock.
func BenchmarkParallelism(b *testing.B) {
	for _, d := range []Dataset{SYN, GM} {
		in := instanceFor(b, d, nil)
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/P=%d", d, p), func(b *testing.B) {
				benchMethod(b, in, SeqBDC, WithParallelism(p))
			})
		}
	}
}

// BenchmarkParallelismPhase2 isolates the concurrent best-response trials:
// the collaboration game alone at SYN defaults across worker-pool bounds.
func BenchmarkParallelismPhase2(b *testing.B) {
	in := instanceFor(b, SYN, nil)
	phase1 := make([]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		c := &in.Centers[ci]
		phase1[ci] = assign.Sequential(in, c, c.Workers, c.Tasks)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				collab.Run(in, phase1, collab.Config{Parallelism: p})
			}
		})
	}
}
