// Dynamic arrivals: the batched extension of paper §V-E. Orders arrive over
// a simulated working day following a rush-hour profile; every 15 minutes
// the platform re-runs IMTAO on the pending snapshot. The example compares
// collaboration on vs. off over the whole day.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imtao"
	"imtao/internal/core"
	"imtao/internal/dynamic"
	"imtao/internal/geo"
)

func main() {
	// Platform: 10 depots and 50 couriers from the GM generator; the task
	// list of the generated instance is discarded — arrivals replace it.
	params := imtao.DefaultParams(imtao.GM)
	params.NumCenters = 10
	params.NumWorkers = 50
	params.NumTasks = 0
	params.Seed = 5
	base, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	attached, err := imtao.Partition(base)
	if err != nil {
		log.Fatal(err)
	}

	// A 4-hour window with a rush around t = 1.5h: 300 orders total.
	rng := rand.New(rand.NewSource(9))
	var arrivals []dynamic.Arrival
	for i := 0; i < 300; i++ {
		t := rushHour(rng)
		arrivals = append(arrivals, dynamic.Arrival{
			ArriveAt: t,
			Loc:      geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
			Expiry:   0.75, // 45-minute promise
			Reward:   1,
		})
	}

	run := func(m core.Method) *dynamic.Result {
		res, err := dynamic.Simulate(attached, arrivals, dynamic.Config{
			BatchInterval: 0.25, Method: m,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	woc := run(core.Method{Assigner: core.Seq, Collab: core.WoC})
	bdc := run(core.Method{Assigner: core.Seq, Collab: core.BDC})

	fmt.Println("batched day simulation: 300 orders, 15-minute batches, 45-minute promise")
	fmt.Printf("  %-12s %10s %10s %10s %12s %14s\n", "method", "delivered", "expired", "leftover", "completion", "mean latency")
	for _, r := range []struct {
		name string
		res  *dynamic.Result
	}{{"Seq-w/o-C", woc}, {"Seq-BDC", bdc}} {
		fmt.Printf("  %-12s %10d %10d %10d %11.1f%% %11.0f min\n",
			r.name, r.res.TotalAssigned, r.res.TotalExpired, r.res.Leftover,
			100*r.res.CompletionRate(), 60*r.res.MeanLatency())
	}

	fmt.Println("\nper-batch view (Seq-BDC):")
	fmt.Printf("  %-8s %-8s %-8s %-9s %-8s\n", "t (h)", "pending", "idle", "assigned", "U_rho")
	for _, bstat := range bdc.Batches {
		if bstat.Pending == 0 && bstat.Assigned == 0 {
			continue
		}
		fmt.Printf("  %-8.2f %-8d %-8d %-9d %-8.3f\n",
			bstat.Time, bstat.Pending, bstat.IdleWorkers, bstat.Assigned, bstat.Unfairness)
	}
}

// rushHour samples an arrival time in [0, 3.5) hours, biased toward 1.5h.
func rushHour(rng *rand.Rand) float64 {
	for {
		t := rng.Float64() * 3.5
		peak := 1.0 - 0.22*abs(t-1.5) // triangular-ish acceptance
		if rng.Float64() < peak {
			return t
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
