// Convergence walk-through: reproduces the paper's Fig. 11 analysis — the
// best-response dynamics of the multi-center collaboration game at |C| = 50
// — and prints each accepted transfer with the potential-game quantities
// (per-center ratio, platform unfairness) so the monotone convergence to a
// pure Nash equilibrium is visible step by step.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"imtao"
	"imtao/internal/textplot"
)

func main() {
	params := imtao.DefaultParams(imtao.SYN)
	params.NumCenters = 50 // the paper's Fig. 11 setting
	params.Seed = 1

	raw, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collaboration game over %d centers (%d workers, %d tasks)\n",
		len(in.Centers), len(in.Workers), len(in.Tasks))
	fmt.Printf("phase-1 state: %d assigned, unfairness %.4f\n\n",
		rep.Phase1Assigned, rep.Phase1Unfairness)

	fmt.Printf("%-5s %-28s %-22s %-9s %-8s\n", "iter", "move", "recipient ratio", "assigned", "U_rho")
	for _, s := range rep.Trace {
		if s.Accepted {
			fmt.Printf("%-5d worker %3d: c%-3d → c%-3d      %.3f → %.3f          %-9d %.4f\n",
				s.Iteration, s.Worker, s.Source, s.Recipient, s.RhoBefore, s.RhoAfter,
				s.Assigned, s.Unfairness)
		} else {
			fmt.Printf("%-5d center %3d leaves the game (no improving dispatch)\n",
				s.Iteration, s.Recipient)
		}
	}

	// The convergence witness: the game potential Φ = Σρ_i, recorded per
	// iteration in the trace, climbs monotonically until no move improves it
	// — that is the Nash equilibrium. Iteration 0 is the phase-1 state.
	phis := []float64{imtao.Phi(rep.Phase1Ratios)}
	ticks := []string{"0"}
	for _, s := range rep.Trace {
		if s.Accepted {
			phis = append(phis, s.Phi)
			ticks = append(ticks, fmt.Sprintf("%d", s.Iteration))
		}
	}
	fmt.Println()
	fmt.Print(textplot.Chart{
		Title:  "game potential Phi per accepted iteration (monotone => convergence)",
		XTicks: ticks,
		Series: []textplot.Series{{Name: "Phi", Values: phis}},
	}.Render())

	fmt.Printf("\nreached a pure Nash equilibrium after %d iterations:\n", rep.Iterations)
	fmt.Printf("  assigned    %d → %d\n", rep.Phase1Assigned, rep.Assigned)
	fmt.Printf("  unfairness  %.4f → %.4f\n", rep.Phase1Unfairness, rep.Unfairness)
	fmt.Printf("  transfers   %d\n", rep.Transfers)

	// The equilibrium property the paper proves (Lemma 1): once converged,
	// no center can raise its own assignment ratio with one more borrowed
	// worker — rerunning the game from the equilibrium accepts no moves.
	again, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		log.Fatal(err)
	}
	if again.Assigned != rep.Assigned {
		log.Fatal("dynamics are not deterministic?!")
	}
	fmt.Println("\nre-running the dynamics reproduces the same equilibrium — stable.")
}
