// Supermarket delivery: a hand-built Freshippo/Walmart-style scenario from
// the paper's introduction. Three stores serve a city district; the morning
// rush leaves the downtown store overloaded while a suburban store has idle
// couriers. The example shows how IMTAO's workforce transfer fixes the
// imbalance and what each courier's delivery route looks like.
//
//	go run ./examples/supermarket
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imtao"
)

func main() {
	// A 10 km × 10 km district; couriers ride at 18 km/h. Distances are in
	// kilometres, times in hours.
	b := imtao.NewBuilder(10, 10, 18)

	downtown := b.AddCenter(5.0, 5.0)
	westside := b.AddCenter(1.5, 6.0)
	harbor := b.AddCenter(8.0, 2.0)

	rng := rand.New(rand.NewSource(7))
	jitter := func(v float64) float64 { return v + rng.Float64()*1.6 - 0.8 }

	// Morning rush: 14 orders around downtown, 3 near the west side, 4 near
	// the harbor — all due within 75 minutes.
	for i := 0; i < 14; i++ {
		b.AddTask(jitter(5.0), jitter(5.0), 1.25, 1)
	}
	for i := 0; i < 3; i++ {
		b.AddTask(jitter(1.5), jitter(6.0), 1.25, 1)
	}
	for i := 0; i < 4; i++ {
		b.AddTask(jitter(8.0), jitter(2.0), 1.25, 1)
	}

	// Couriers: downtown has only 2 on shift, the west side 4, the harbor 2.
	for i := 0; i < 2; i++ {
		b.AddWorker(jitter(5.0), jitter(5.0), 4)
	}
	for i := 0; i < 4; i++ {
		b.AddWorker(jitter(1.5), jitter(6.0), 4)
	}
	for i := 0; i < 2; i++ {
		b.AddWorker(jitter(8.0), jitter(2.0), 4)
	}

	in, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	names := map[imtao.CenterID]string{downtown: "downtown", westside: "west side", harbor: "harbor"}
	fmt.Println("store load after the morning orders landed:")
	for _, c := range in.Centers {
		fmt.Printf("  %-10s %2d orders, %d couriers\n", names[c.ID], len(c.Tasks), len(c.Workers))
	}

	independent, err := imtao.Run(in, imtao.SeqWoC)
	if err != nil {
		log.Fatal(err)
	}
	collaborative, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwithout collaboration: %d/%d orders delivered on time (unfairness %.2f)\n",
		independent.Assigned, len(in.Tasks), independent.Unfairness)
	fmt.Printf("with IMTAO (Seq-BDC):  %d/%d orders delivered on time (unfairness %.2f)\n",
		collaborative.Assigned, len(in.Tasks), collaborative.Unfairness)

	if len(collaborative.Solution.Transfers) > 0 {
		fmt.Println("\ncourier reallocations:")
		for _, t := range collaborative.Solution.Transfers {
			fmt.Printf("  courier %d rides from the %s store to help the %s store\n",
				t.Worker, names[t.Src], names[t.Dst])
		}
	}

	fmt.Println("\nfinal delivery routes:")
	for _, a := range collaborative.Solution.PerCenter {
		for _, r := range a.Routes {
			fmt.Printf("  courier %d out of %-10s delivers orders %v\n",
				r.Worker, names[r.Center], r.Tasks)
		}
	}
}
