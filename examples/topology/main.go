// Topology study: does IMTAO's advantage survive on structured city shapes?
// The paper evaluates uniform (SYN) and clustered (GM) geometry; this
// example adds a linear corridor city, a twin-city metro and a ring road,
// plus a comparison of center-placement strategies (random vs. k-means of
// demand) on each.
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imtao"
	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/voronoi"
	"imtao/internal/workload"
)

func main() {
	params := imtao.DefaultParams(imtao.SYN)
	params.NumTasks, params.NumWorkers, params.NumCenters = 300, 75, 12
	params.Seed = 6

	fmt.Println("collaboration gain by city topology (300 tasks, 75 couriers, 12 depots):")
	fmt.Printf("  %-12s %12s %12s %8s %14s %14s\n",
		"topology", "w/o-C", "Seq-BDC", "gain", "U w/o-C", "U Seq-BDC")

	for _, preset := range []workload.Preset{workload.Corridor, workload.TwinCities, workload.RingRoad} {
		raw, err := workload.GeneratePreset(preset, params)
		if err != nil {
			log.Fatal(err)
		}
		in, err := imtao.Partition(raw)
		if err != nil {
			log.Fatal(err)
		}
		woc, err := imtao.Run(in, imtao.SeqWoC)
		if err != nil {
			log.Fatal(err)
		}
		bdc, err := imtao.Run(in, imtao.SeqBDC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8d/300 %8d/300 %7.1f%% %14.3f %14.3f\n",
			preset, woc.Assigned, bdc.Assigned,
			100*float64(bdc.Assigned-woc.Assigned)/float64(woc.Assigned),
			woc.Unfairness, bdc.Unfairness)
	}

	// Center placement: random (as in the paper) vs k-means of the demand.
	fmt.Println("\ncenter placement on the twin-city metro (Seq-BDC):")
	raw, err := workload.GeneratePreset(workload.TwinCities, params)
	if err != nil {
		log.Fatal(err)
	}
	for _, placement := range []string{"random", "k-means of demand"} {
		scene := raw.Clone()
		if placement == "k-means of demand" {
			pts := make([]geo.Point, len(scene.Tasks))
			for i, t := range scene.Tasks {
				pts[i] = t.Loc
			}
			centers, err := voronoi.KMeans(rand.New(rand.NewSource(1)), pts, len(scene.Centers), 40)
			if err != nil {
				log.Fatal(err)
			}
			for i := range scene.Centers {
				scene.Centers[i].Loc = centers[i]
			}
		}
		in, err := imtao.Partition(scene)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s assigned %3d/300, unfairness %.3f, %d transfers\n",
			placement, rep.Assigned, rep.Unfairness, rep.Transfers)
	}
}
