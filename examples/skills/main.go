// Skills: the multi-skilled extension of paper §V-E. A grocery chain has
// three delivery classes — ambient, chilled (needs a fridge van) and bulky
// (needs a cargo bike) — and a mixed fleet. The example contrasts the
// skill-aware sequential assignment with a skill-blind plan that would
// hand chilled orders to couriers without fridge vans.
//
//	go run ./examples/skills
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imtao"
	"imtao/internal/assign"
	"imtao/internal/model"
	"imtao/internal/skills"
)

const (
	fridgeVan = 0
	cargoBike = 1
)

func main() {
	params := imtao.DefaultParams(imtao.SYN)
	params.NumCenters = 1 // a single dark store
	params.NumWorkers = 12
	params.NumTasks = 48
	params.Expiry = 3.0 // same-day window: one dark store covers the city
	params.Seed = 4
	raw, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		log.Fatal(err)
	}

	// Fleet: 4 fridge vans, 4 cargo bikes, 4 plain scooters.
	// Orders: one third chilled, one sixth bulky, the rest ambient.
	rng := rand.New(rand.NewSource(2))
	prof := skills.NewProfile()
	for i := 0; i < params.NumWorkers; i++ {
		switch {
		case i < 4:
			prof.Owned[model.WorkerID(i)] = skills.Of(fridgeVan)
		case i < 8:
			prof.Owned[model.WorkerID(i)] = skills.Of(cargoBike)
		}
	}
	chilled, bulky := 0, 0
	for i := 0; i < params.NumTasks; i++ {
		switch r := rng.Float64(); {
		case r < 1.0/3:
			prof.Required[model.TaskID(i)] = skills.Of(fridgeVan)
			chilled++
		case r < 0.5:
			prof.Required[model.TaskID(i)] = skills.Of(cargoBike)
			bulky++
		}
	}
	fmt.Printf("orders: %d chilled, %d bulky, %d ambient; fleet: 4 vans, 4 bikes, 4 scooters\n\n",
		chilled, bulky, params.NumTasks-chilled-bulky)

	c := in.Center(0)
	if dead := prof.Unservable(c.Tasks, c.Workers); len(dead) > 0 {
		fmt.Printf("unservable regardless of routing: tasks %v\n\n", dead)
	}

	aware := skills.Sequential(in, c, c.Workers, c.Tasks, prof)
	blind := assign.Sequential(in, c, c.Workers, c.Tasks)

	// Score the skill-blind plan: chilled orders on a scooter spoil.
	valid := 0
	for _, r := range blind.Routes {
		for _, tid := range r.Tasks {
			if prof.Compatible(r.Worker, tid) {
				valid++
			}
		}
	}
	fmt.Printf("skill-blind plan:  %d routed, only %d actually deliverable\n",
		blind.AssignedCount(), valid)
	fmt.Printf("skill-aware plan:  %d routed, all %d deliverable\n\n",
		aware.AssignedCount(), aware.AssignedCount())

	fmt.Println("skill-aware routes:")
	for _, r := range aware.Routes {
		kind := "scooter"
		switch {
		case prof.Owned[r.Worker].Has(skills.Of(fridgeVan)):
			kind = "fridge van"
		case prof.Owned[r.Worker].Has(skills.Of(cargoBike)):
			kind = "cargo bike"
		}
		fmt.Printf("  worker %2d (%-10s) -> orders %v\n", r.Worker, kind, r.Tasks)
	}
}
