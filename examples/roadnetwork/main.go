// Road network: replaces the paper's straight-line travel model with a
// street grid and shows (1) how much street-constrained travel costs the
// platform, and (2) how a congested downtown shifts IMTAO's workforce
// transfers.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"imtao"
)

func main() {
	params := imtao.DefaultParams(imtao.SYN)
	params.NumTasks, params.NumWorkers, params.NumCenters = 200, 50, 10
	params.Expiry = 1.5
	params.Seed = 8

	raw, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, metric imtao.TravelMetric) *imtao.Report {
		scene := raw.Clone()
		scene.Metric = metric
		in, err := imtao.Partition(scene)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := imtao.Run(in, imtao.SeqBDC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s assigned %3d/%d, unfairness %.3f, %d transfers\n",
			label, rep.Assigned, len(scene.Tasks), rep.Unfairness, rep.Transfers)
		return rep
	}

	fmt.Println("Seq-BDC under three travel models (200 tasks, 50 couriers, 10 depots):")
	straight := run("straight line (paper)", nil)

	grid, err := imtao.NewRoadNetwork(raw.Bounds, 41, 41, params.Speed)
	if err != nil {
		log.Fatal(err)
	}
	onGrid := run("street grid", grid)

	congested, err := imtao.NewRoadNetwork(raw.Bounds, 41, 41, params.Speed)
	if err != nil {
		log.Fatal(err)
	}
	// Rush-hour jam over the city center: everything within 400 units of
	// the middle moves at one third speed.
	congested.SetCongestionDisk(imtao.Point{X: 1000, Y: 1000}, 400, 3)
	jammed := run("street grid + downtown jam", congested)

	fmt.Printf("\nstreet detours cost %d deliveries; the downtown jam another %d.\n",
		straight.Assigned-onGrid.Assigned, onGrid.Assigned-jammed.Assigned)
	fmt.Println("every route stays deadline-feasible under whichever metric produced it.")
}
