// Paper Fig. 1 walk-through: reconstructs the worked example from the
// paper's introduction — three university-district centers, four workers,
// six tasks — and shows the exact mechanism: center-independent assignment
// leaves worker w2 idle and unfairness at ≈0.45; dispatching w2 to the
// starved center and reassigning raises the assigned count and drops
// unfairness to ≈0.33.
//
//	go run ./examples/paperfig1
package main

import (
	"fmt"
	"log"

	"imtao"
)

func main() {
	// Geometry built so the center-independent ratios are (1.0, 0.5, 1/3),
	// the paper's starting point. Speed 1 unit/h; expiries in hours.
	b := imtao.NewBuilder(150, 100, 1)
	c1 := b.AddCenter(0, 0)   // campus 1
	c2 := b.AddCenter(100, 0) // campus 2
	c3 := b.AddCenter(40, 0)  // campus 3

	// Campus 1: two workers, one task — one worker will be surplus.
	b.AddWorker(0, 1, 1)   // w1
	b.AddWorker(1, 0, 1)   // w2 — the dispatchable one
	b.AddTask(0, 2, 10, 1) // s1

	// Campus 2: one worker, two tasks; s3 is out of reach (deadline).
	b.AddWorker(100, 1, 1)    // w3
	b.AddTask(100, 2, 10, 1)  // s2
	b.AddTask(100, 60, 10, 1) // s3 — 60 units away, expires first

	// Campus 3: one far-out worker, three tasks; w4 can reach only one,
	// another is reachable only by a dispatched worker, one by nobody.
	b.AddWorker(40, 30, 1)   // w4, 30 units from its center
	b.AddTask(40, 28, 80, 1) // s5 — near w4's inbound path, long window
	b.AddTask(40, 4, 50, 1)  // s6 — deliverable by a dispatched c1 worker
	b.AddTask(40, 55, 10, 1) // s7 — expires before anyone arrives

	in, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	names := map[imtao.CenterID]string{c1: "c1", c2: "c2", c3: "c3"}

	independent, err := imtao.Run(in, imtao.SeqWoC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("center-independent task assignment (no collaboration):")
	for ci, rho := range independent.Ratios {
		fmt.Printf("  %s: rho = %.2f\n", names[imtao.CenterID(ci)], rho)
	}
	fmt.Printf("  assigned %d/%d, collaboration unfairness U_rho = %.2f\n",
		independent.Assigned, len(in.Tasks), independent.Unfairness)

	collaborative, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith IMTAO's inter-center workforce transfer:")
	for _, tr := range collaborative.Solution.Transfers {
		fmt.Printf("  dispatch worker w%d: %s → %s\n",
			tr.Worker+1, names[tr.Src], names[tr.Dst])
	}
	for ci, rho := range collaborative.Ratios {
		fmt.Printf("  %s: rho = %.2f\n", names[imtao.CenterID(ci)], rho)
	}
	fmt.Printf("  assigned %d/%d, collaboration unfairness U_rho = %.2f\n",
		collaborative.Assigned, len(in.Tasks), collaborative.Unfairness)

	fmt.Printf("\npaper's narrative: assigned up (%d → %d), unfairness down (%.2f → %.2f) — reproduced.\n",
		independent.Assigned, collaborative.Assigned,
		independent.Unfairness, collaborative.Unfairness)
}
