// Quickstart: generate a paper-default synthetic scenario, run the proposed
// Seq-BDC method, and compare it against the no-collaboration baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"imtao"
)

func main() {
	// The paper's default SYN setting: 20 centers, 100 workers, 400 tasks
	// uniformly placed in a 2000×2000 service area, 1-hour deadlines,
	// capacity 4 per worker.
	params := imtao.DefaultParams(imtao.SYN)

	baseline, err := imtao.Solve(params, imtao.SeqWoC)
	if err != nil {
		log.Fatal(err)
	}
	proposed, err := imtao.Solve(params, imtao.SeqBDC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CMCTA on the paper's default SYN dataset")
	fmt.Printf("  %-22s assigned %3d/%d   unfairness %.3f\n",
		"Seq-w/o-C (baseline):", baseline.Assigned, params.NumTasks, baseline.Unfairness)
	fmt.Printf("  %-22s assigned %3d/%d   unfairness %.3f\n",
		"Seq-BDC (proposed):", proposed.Assigned, params.NumTasks, proposed.Unfairness)
	fmt.Printf("\ncollaboration dispatched %d workers across centers in %d game iterations\n",
		proposed.Transfers, proposed.Iterations)
	fmt.Printf("gain: +%d tasks, unfairness −%.0f%%\n",
		proposed.Assigned-baseline.Assigned,
		100*(baseline.Unfairness-proposed.Unfairness)/baseline.Unfairness)
}
