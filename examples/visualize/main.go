// Visualize: renders a CMCTA instance and its IMTAO solution as SVG files —
// the Voronoi service-area partition (paper Fig. 1 style), worker/task
// glyphs, delivery routes and the dashed inter-center transfer arrows.
//
//	go run ./examples/visualize
//	# writes instance.svg and solution.svg to the working directory
package main

import (
	"fmt"
	"log"
	"os"

	"imtao"
	"imtao/internal/core"
	"imtao/internal/render"
)

func main() {
	params := imtao.DefaultParams(imtao.GM)
	params.NumCenters = 8
	params.NumWorkers = 40
	params.NumTasks = 160
	params.Seed = 3

	raw, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		log.Fatal(err)
	}

	// Scene only: centers, Voronoi cells, workers, tasks.
	write("instance.svg", func(f *os.File) error {
		return render.Instance(f, in, nil, render.Options{ShowCells: true})
	})

	rep, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
	if err != nil {
		log.Fatal(err)
	}
	// Full solution: routes and transfer arrows on top.
	write("solution.svg", func(f *os.File) error {
		return render.Instance(f, in, rep.Solution, render.Options{
			ShowCells: true, ShowRoutes: true, ShowTransfers: true,
		})
	})

	fmt.Printf("rendered instance.svg and solution.svg\n")
	fmt.Printf("solution: %d/%d assigned, %d transfers, unfairness %.3f\n",
		rep.Assigned, len(in.Tasks), rep.Transfers, rep.Unfairness)
}

func write(name string, fn func(*os.File) error) {
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}
