// Logistics fleet planning: a JD-Logistics-style what-if study over a large
// generated network. The operator compares all eight methods of the paper on
// the same snapshot, then sweeps the courier head-count to find the fleet
// size at which every parcel can be delivered before its deadline.
//
//	go run ./examples/logistics
package main

import (
	"fmt"
	"log"
	"time"

	"imtao"
)

func main() {
	// A clustered (gMission-like) city with 30 depots, 150 couriers and 600
	// same-day parcels.
	params := imtao.DefaultParams(imtao.GM)
	params.NumCenters = 30
	params.NumWorkers = 150
	params.NumTasks = 600
	params.Seed = 11

	raw, err := imtao.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("method comparison on one snapshot (600 parcels, 150 couriers, 30 depots):")
	fmt.Printf("  %-10s %9s %11s %11s %10s\n", "method", "delivered", "unfairness", "transfers", "cpu")
	for _, m := range imtao.Methods() {
		opts := []imtao.RunOption{imtao.WithSeed(1)}
		if m == imtao.OptBDC || m == imtao.OptRBDC || m == imtao.OptDC || m == imtao.OptWoC {
			// The exact assigner needs a budget at this scale (the paper
			// reports thousands of seconds for its unbounded runs). BDC
			// re-runs the assigner once per candidate dispatch, so even a
			// small per-center budget accumulates to minutes.
			opts = append(opts, imtao.WithOptBudget(10*time.Millisecond))
		}
		rep, err := imtao.Run(in, m, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %9d %11.3f %11d %10s\n",
			m, rep.Assigned, rep.Unfairness, rep.Transfers,
			(rep.Phase1Time + rep.Phase2Time).Round(time.Millisecond))
	}

	// Fleet sizing: how many couriers until the network clears every parcel?
	fmt.Println("\nfleet sizing sweep with Seq-BDC:")
	fmt.Printf("  %-10s %10s %12s\n", "couriers", "delivered", "unfairness")
	for _, w := range []int{150, 175, 200, 225, 250} {
		p := params
		p.NumWorkers = w
		rep, err := imtao.Solve(p, imtao.SeqBDC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10d %6d/600 %12.3f\n", w, rep.Assigned, rep.Unfairness)
		if rep.Assigned == p.NumTasks {
			fmt.Printf("\n→ %d couriers clear the full parcel load.\n", w)
			break
		}
	}
}
