package imtao

import (
	"time"
)

// Comparison is the outcome of running several methods on one instance.
type Comparison struct {
	Method     Method
	Assigned   int
	Unfairness float64
	Transfers  int
	CPU        time.Duration
}

// CompareMethods runs each method on the same partitioned instance and
// returns one row per method, in the given order — the "which strategy
// should my platform use on this snapshot" helper.
func CompareMethods(in *Instance, methods []Method, opts ...RunOption) ([]Comparison, error) {
	if len(methods) == 0 {
		methods = Methods()[:4] // the Seq methods
	}
	out := make([]Comparison, 0, len(methods))
	for _, m := range methods {
		rep, err := Run(in, m, opts...)
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{
			Method:     m,
			Assigned:   rep.Assigned,
			Unfairness: rep.Unfairness,
			Transfers:  rep.Transfers,
			CPU:        rep.Phase1Time + rep.Phase2Time,
		})
	}
	return out, nil
}

// Best returns the comparison row with the most assigned tasks, breaking
// ties toward lower unfairness then earlier position.
func Best(rows []Comparison) (Comparison, bool) {
	if len(rows) == 0 {
		return Comparison{}, false
	}
	best := rows[0]
	for _, r := range rows[1:] {
		if r.Assigned > best.Assigned ||
			(r.Assigned == best.Assigned && r.Unfairness < best.Unfairness) {
			best = r
		}
	}
	return best, true
}
