module imtao

go 1.22
