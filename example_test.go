package imtao_test

import (
	"fmt"

	"imtao"
)

// The one-call path: generate the paper's default SYN dataset, partition it
// with a Voronoi diagram, and run the proposed Seq-BDC method.
func ExampleSolve() {
	params := imtao.DefaultParams(imtao.SYN)
	report, err := imtao.Solve(params, imtao.SeqBDC)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Assigned > 0, report.Unfairness >= 0)
	// Output: true true
}

// Building a custom scenario entity by entity. Two stores share a 10×10 km
// district; the second store's extra order can only be served by a courier
// borrowed from the first.
func ExampleBuilder() {
	b := imtao.NewBuilder(100, 100, 100)
	b.AddCenter(20, 50)
	b.AddCenter(80, 50)
	b.AddWorker(19, 50, 1)
	b.AddWorker(21, 50, 1) // the spare courier
	b.AddWorker(79, 50, 1)
	b.AddTask(22, 52, 1, 1)
	b.AddTask(78, 52, 1, 1)
	b.AddTask(82, 48, 1, 1) // needs a borrowed courier

	in, err := b.Build()
	if err != nil {
		panic(err)
	}
	report, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assigned %d/3, transfers %d\n", report.Assigned, report.Transfers)
	// Output: assigned 3/3, transfers 1
}

// Comparing a method against the no-collaboration baseline on one instance.
func ExampleRun() {
	params := imtao.DefaultParams(imtao.GM)
	params.NumTasks, params.NumWorkers, params.NumCenters = 120, 30, 6
	raw, err := imtao.Generate(params)
	if err != nil {
		panic(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		panic(err)
	}
	baseline, err := imtao.Run(in, imtao.SeqWoC)
	if err != nil {
		panic(err)
	}
	proposed, err := imtao.Run(in, imtao.SeqBDC)
	if err != nil {
		panic(err)
	}
	fmt.Println(proposed.Assigned >= baseline.Assigned)
	// Output: true
}

// Method presets follow the paper's naming.
func ExampleParseMethod() {
	m, err := imtao.ParseMethod("Seq-BDC")
	if err != nil {
		panic(err)
	}
	fmt.Println(m)
	// Output: Seq-BDC
}
