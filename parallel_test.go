// Determinism contract of the parallel engine: for any fixed seed and any
// deterministic assigner, WithParallelism(N) and WithParallelism(1) must
// produce bit-identical Reports — same routes, transfers, trace, and
// metrics. Phase 1 writes per-center results to fixed slots and phase 2
// selects the best-response winner by a serial scan over the trial slots,
// so scheduling order can never leak into the output.
package imtao

import (
	"fmt"
	"reflect"
	"testing"

	"imtao/internal/collab"
)

// reducedParams shrinks a dataset to a size where the exact Opt assigner
// (zero time budget, hence deterministic) finishes quickly — its VTDS
// enumeration is exponential in tasks-per-worker, so both the counts and
// the capacity must stay small.
func reducedParams(p *Params) {
	p.NumTasks, p.NumWorkers, p.NumCenters = 40, 10, 4
	p.MaxT = 2
}

func runPair(t *testing.T, in *Instance, m Method, par int) (*Report, *Report) {
	t.Helper()
	serial, err := Run(in, m, WithSeed(1), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(in, m, WithSeed(1), WithParallelism(par))
	if err != nil {
		t.Fatal(err)
	}
	return serial, parallel
}

func assertReportsIdentical(t *testing.T, serial, parallel *Report) {
	t.Helper()
	if serial.Assigned != parallel.Assigned {
		t.Errorf("Assigned: serial %d, parallel %d", serial.Assigned, parallel.Assigned)
	}
	if serial.Phase1Assigned != parallel.Phase1Assigned {
		t.Errorf("Phase1Assigned: serial %d, parallel %d", serial.Phase1Assigned, parallel.Phase1Assigned)
	}
	if serial.Unfairness != parallel.Unfairness {
		t.Errorf("Unfairness: serial %v, parallel %v", serial.Unfairness, parallel.Unfairness)
	}
	if serial.Transfers != parallel.Transfers {
		t.Errorf("Transfers: serial %d, parallel %d", serial.Transfers, parallel.Transfers)
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("Iterations: serial %d, parallel %d", serial.Iterations, parallel.Iterations)
	}
	if !reflect.DeepEqual(serial.Ratios, parallel.Ratios) {
		t.Errorf("Ratios differ:\nserial   %v\nparallel %v", serial.Ratios, parallel.Ratios)
	}
	if !reflect.DeepEqual(serial.Solution.Transfers, parallel.Solution.Transfers) {
		t.Errorf("transfer lists differ:\nserial   %v\nparallel %v",
			serial.Solution.Transfers, parallel.Solution.Transfers)
	}
	for ci := range serial.Solution.PerCenter {
		s, p := serial.Solution.PerCenter[ci].Routes, parallel.Solution.PerCenter[ci].Routes
		if !reflect.DeepEqual(s, p) {
			t.Errorf("center %d routes differ:\nserial   %v\nparallel %v", ci, s, p)
		}
	}
	// Per-iteration wall clock is the one trace field outside the
	// determinism contract; everything else must match bit for bit.
	st := append([]collab.TraceStep(nil), serial.Trace...)
	pt := append([]collab.TraceStep(nil), parallel.Trace...)
	for i := range st {
		st[i].Duration = 0
	}
	for i := range pt {
		pt[i].Duration = 0
	}
	if !reflect.DeepEqual(st, pt) {
		t.Errorf("game traces differ (%d vs %d steps)", len(serial.Trace), len(parallel.Trace))
	}
}

// TestParallelMatchesSerial covers all eight method presets on both
// datasets. Seq methods run at the paper's Table I defaults; Opt methods run
// exact (zero budget) on a reduced instance, since a time-budgeted Opt is
// wall-clock dependent and outside the determinism contract.
func TestParallelMatchesSerial(t *testing.T) {
	for _, d := range []Dataset{SYN, GM} {
		for _, m := range Methods() {
			m := m
			t.Run(fmt.Sprintf("%s/%s", d, m), func(t *testing.T) {
				t.Parallel()
				p := DefaultParams(d)
				if m.Assigner == OptBDC.Assigner {
					reducedParams(&p)
				}
				raw, err := Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				in, err := Partition(raw)
				if err != nil {
					t.Fatal(err)
				}
				serial, parallel := runPair(t, in, m, 8)
				assertReportsIdentical(t, serial, parallel)
			})
		}
	}
}

// TestParallelDefaultMatchesSerial pins the default (Parallelism 0 =
// GOMAXPROCS) to the serial reference on the proposed method.
func TestParallelDefaultMatchesSerial(t *testing.T) {
	for _, d := range []Dataset{SYN, GM} {
		raw, err := Generate(DefaultParams(d))
		if err != nil {
			t.Fatal(err)
		}
		in, err := Partition(raw)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Run(in, SeqBDC, WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		def, err := Run(in, SeqBDC)
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, serial, def)
	}
}
