package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"

	"imtao"
)

// simState tracks the run lifecycle for /healthz: "running" while the
// pipeline executes, "serving" once the report is done and the process only
// keeps the diagnostics listener alive.
var simState atomic.Value // string

func setSimState(s string) { simState.Store(s) }

func currentSimState() string {
	if s, ok := simState.Load().(string); ok {
		return s
	}
	return "starting"
}

// obsMux builds the diagnostics handler served by -listen: a Prometheus
// text-format snapshot of the pipeline metrics at /metrics, a liveness
// probe at /healthz, the standard Go profiler endpoints under
// /debug/pprof/, and — when a flight recorder is running (-flight) — an
// on-demand ring dump at /debug/flightrecorder. sampler, when non-nil, adds
// its liveness to /healthz.
func obsMux(rec *imtao.FlightRecorder, sampler *imtao.RuntimeSampler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		state := currentSimState()
		samplerLive := sampler != nil && sampler.Running()
		// 503 only when the watchdog itself is dead: a requested sampler
		// that stopped means the process is wedged enough to distrust.
		if sampler != nil && !samplerLive {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q,\"sampler\":%v}\n", state, samplerLive)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := imtao.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "flight recorder disabled; run with -flight N", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := rec.WriteTo(w); err != nil {
			// Headers are gone; all we can do is log.
			fmt.Fprintln(os.Stderr, "imtao-sim: flightrecorder dump:", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "imtao-sim diagnostics\n\n/metrics              Prometheus text snapshot\n/healthz              run state + sampler liveness\n/debug/flightrecorder last telemetry events (with -flight)\n/debug/pprof/         Go profiler index\n")
	})
	return mux
}

// serveObs starts the diagnostics listener in the background and returns
// the bound address. Fine-grained latency histograms are enabled for the
// lifetime of the process: anyone running with -listen has opted into
// observation, so the clock reads are wanted.
func serveObs(addr string, rec *imtao.FlightRecorder, sampler *imtao.RuntimeSampler) (string, error) {
	imtao.EnableTiming(true)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, obsMux(rec, sampler)); err != nil {
			fmt.Fprintln(os.Stderr, "imtao-sim: serve:", err)
		}
	}()
	return ln.Addr().String(), nil
}
