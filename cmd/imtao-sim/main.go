// Command imtao-sim runs a single CMCTA scenario end to end and prints a
// detailed report: per-center statistics after each phase, the workforce
// transfers of the collaboration game, and the final metrics.
//
// Usage:
//
//	imtao-sim -dataset syn -tasks 400 -workers 100 -centers 20 -method Seq-BDC
//	imtao-sim -load scene.json -method Seq-BDC   # instance from imtao-datagen
//	imtao-sim -dataset gm -trace                 # print every game iteration
//	imtao-sim -listen :8080                      # serve /metrics + /debug/pprof, stay up
//	imtao-sim -trace-out run.jsonl               # stream telemetry events to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imtao"
	"imtao/internal/render"
	"imtao/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "syn", "dataset generator: gm or syn")
		tasks   = flag.Int("tasks", 400, "number of tasks |S|")
		workers = flag.Int("workers", 100, "number of workers |W|")
		centers = flag.Int("centers", 20, "number of centers |C|")
		expiry  = flag.Float64("expiry", 1.0, "task expiration time e in hours")
		maxT    = flag.Int("maxt", 4, "worker capacity maxT")
		seed    = flag.Int64("seed", 1, "generator / RBDC seed")
		method  = flag.String("method", "Seq-BDC", "method, e.g. Seq-BDC, Opt-w/o-C")
		budget  = flag.Duration("opt-budget", time.Second, "per-center budget for Opt methods")
		load    = flag.String("load", "", "load an instance JSON file instead of generating")
		save    = flag.String("save", "", "write the final solution to a JSON file")
		svg     = flag.String("svg", "", "render the solution (cells, routes, transfers) to an SVG file")
		trace   = flag.Bool("trace", false, "print every collaboration game iteration")

		listen   = flag.String("listen", "", "serve /metrics and /debug/pprof on this address (e.g. :8080) and keep running after the report")
		traceOut = flag.String("trace-out", "", "stream run telemetry to this JSONL file")
	)
	flag.Parse()

	if *listen != "" {
		addr, err := serveObs(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("diagnostics: http://%s/metrics and http://%s/debug/pprof/\n\n", addr, addr)
	}

	m, err := imtao.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}

	var raw *imtao.Instance
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		raw, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		d, err := workload.ParseDataset(*dataset)
		if err != nil {
			fatal(err)
		}
		p := imtao.DefaultParams(d)
		p.NumTasks, p.NumWorkers, p.NumCenters = *tasks, *workers, *centers
		p.Expiry, p.MaxT, p.Seed = *expiry, *maxT, *seed
		raw, err = imtao.Generate(p)
		if err != nil {
			fatal(err)
		}
	}

	in, err := imtao.Partition(raw)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d centers, %d workers, %d tasks, speed %.0f units/h\n",
		len(in.Centers), len(in.Workers), len(in.Tasks), in.Speed)
	fmt.Println("\nper-center load after Voronoi partition:")
	fmt.Printf("  %-8s %-8s %-8s\n", "center", "tasks", "workers")
	for _, c := range in.Centers {
		fmt.Printf("  %-8d %-8d %-8d\n", c.ID, len(c.Tasks), len(c.Workers))
	}

	opts := []imtao.RunOption{imtao.WithSeed(*seed), imtao.WithOptBudget(*budget)}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts = append(opts, imtao.WithTrace(f))
	}
	rep, err := imtao.Run(in, m, opts...)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		fmt.Printf("telemetry trace streaming to %s\n", *traceOut)
	}

	fmt.Printf("\nphase 1 (center-independent %s): assigned %d/%d, U_rho %.4f, %s\n",
		m.Assigner, rep.Phase1Assigned, len(in.Tasks), rep.Phase1Unfairness, rep.Phase1Time)
	fmt.Printf("phase 2 (%s): %d game iterations, %d transfers, %s\n",
		m.Collab, rep.Iterations, rep.Transfers, rep.Phase2Time)

	if *trace {
		fmt.Println("\ngame iterations:")
		fmt.Printf("  %-5s %-9s %-7s %-7s %-9s %-9s %-9s %-9s\n",
			"iter", "recipient", "worker", "from", "accepted", "rho", "assigned", "U_rho")
		for _, s := range rep.Trace {
			fmt.Printf("  %-5d %-9d %-7d %-7d %-9v %.3f→%.3f %-9d %-9.4f\n",
				s.Iteration, s.Recipient, s.Worker, s.Source, s.Accepted,
				s.RhoBefore, s.RhoAfter, s.Assigned, s.Unfairness)
		}
	}

	if len(rep.Solution.Transfers) > 0 {
		fmt.Println("\nworkforce transfers:")
		for _, t := range rep.Solution.Transfers {
			fmt.Printf("  worker %d: center %d → center %d\n", t.Worker, t.Src, t.Dst)
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteSolutionJSON(f, rep.Solution); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("\nsolution written to %s\n", *save)
	}

	fmt.Printf("\nfinal: assigned %d/%d (%.1f%%), unfairness U_rho %.4f\n",
		rep.Assigned, len(in.Tasks), 100*float64(rep.Assigned)/float64(len(in.Tasks)),
		rep.Unfairness)
	fmt.Println("\nper-center assignment ratios:")
	for ci, r := range rep.Ratios {
		fmt.Printf("  center %-3d rho = %.3f\n", ci, r)
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		err = render.Instance(f, in, rep.Solution, render.Options{
			ShowCells: true, ShowRoutes: true, ShowTransfers: true,
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nSVG written to %s\n", *svg)
	}

	u := imtao.ComputeUtilization(in, rep.Solution)
	fmt.Printf("\nworkforce utilization: %d/%d workers active, %d dispatched\n",
		u.Active, u.Workers, u.Dispatched)
	fmt.Printf("  %.2f tasks per active worker, capacity used %.0f%%\n",
		u.TasksPerActive, 100*u.CapacityUsed)
	fmt.Printf("  mean route %.2fh, longest route %.2fh\n", u.MeanRouteHours, u.MaxRouteHours)

	if *listen != "" {
		fmt.Printf("\nrun complete; still serving on %s — Ctrl-C to exit\n", *listen)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imtao-sim:", err)
	os.Exit(1)
}
