// Command imtao-sim runs a single CMCTA scenario end to end and prints a
// detailed report: per-center statistics after each phase, the workforce
// transfers of the collaboration game, and the final metrics.
//
// Usage:
//
//	imtao-sim -dataset syn -tasks 400 -workers 100 -centers 20 -method Seq-BDC
//	imtao-sim -load scene.json -method Seq-BDC   # instance from imtao-datagen
//	imtao-sim -dataset gm -trace                 # print every game iteration
//	imtao-sim -listen :8080                      # serve /metrics + /debug/pprof, stay up
//	imtao-sim -trace-out run.jsonl               # stream telemetry events to a file
//	imtao-sim -trace-out run.trace.json          # record a span timeline for ui.perfetto.dev
//	imtao-sim -flight 4096 -listen :8080         # keep the last 4096 events at /debug/flightrecorder
//	imtao-sim -provenance-out run.prov.jsonl     # record the decision ledger for imtao-explain
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"imtao"
	"imtao/internal/render"
	"imtao/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "syn", "dataset generator: gm or syn")
		tasks   = flag.Int("tasks", 400, "number of tasks |S|")
		workers = flag.Int("workers", 100, "number of workers |W|")
		centers = flag.Int("centers", 20, "number of centers |C|")
		expiry  = flag.Float64("expiry", 1.0, "task expiration time e in hours")
		maxT    = flag.Int("maxt", 4, "worker capacity maxT")
		seed    = flag.Int64("seed", 1, "generator / RBDC seed")
		method  = flag.String("method", "Seq-BDC", "method, e.g. Seq-BDC, Opt-w/o-C")
		budget  = flag.Duration("opt-budget", time.Second, "per-center budget for Opt methods")
		load    = flag.String("load", "", "load an instance JSON file instead of generating")
		save    = flag.String("save", "", "write the final solution to a JSON file")
		svg     = flag.String("svg", "", "render the solution (cells, routes, transfers) to an SVG file")
		trace   = flag.Bool("trace", false, "print every collaboration game iteration")

		provOut = flag.String("provenance-out", "", "record the assignment decision ledger (phase-1 scans, every game iteration with its trials, final routes, equilibrium certificate) to this JSONL file — query it with imtao-explain")

		listen     = flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080) and keep running after the report")
		traceOut   = flag.String("trace-out", "", "record run telemetry to this file: a .jsonl path streams events as JSON Lines, any other path writes a Chrome/Perfetto span timeline after the run")
		flight     = flag.Int("flight", 0, "retain the last N telemetry events in a flight recorder (0 disables); dumped on panic, on SIGQUIT, and at /debug/flightrecorder under -listen")
		flightDump = flag.String("flight-dump", "", "also dump the flight recorder to this file at exit (default: stderr, and only on panic or SIGQUIT)")

		sampleEvery  = flag.Duration("runtime-sample", 0, "sample Go runtime vitals (GC pause, heap, goroutines) at this interval into /metrics and the event stream; 0 uses the default under -listen, negative disables")
		profileDir   = flag.String("profile-dir", "", "continuously capture CPU+heap pprof profiles into this directory (a bounded ring; see -profile-keep)")
		profileEvery = flag.Duration("profile-interval", time.Minute, "continuous-profile capture period under -profile-dir")
		profileKeep  = flag.Int("profile-keep", 0, "profiles of each kind retained under -profile-dir (0 selects the default)")
	)
	flag.Parse()
	setSimState("starting")

	var recorder *imtao.FlightRecorder
	if *flight > 0 {
		recorder = imtao.NewFlightRecorder(*flight)
	}

	var profiles *imtao.ProfileRing
	if *profileDir != "" {
		var err error
		profiles, err = imtao.NewProfileRing(*profileDir, *profileEvery, *profileKeep)
		if err != nil {
			fatal(err)
		}
		profiles.Start()
		defer profiles.Stop()
		fmt.Printf("continuous profiling: CPU+heap ring in %s every %s\n", *profileDir, *profileEvery)
	}

	if recorder != nil || profiles != nil {
		watchSIGQUIT(recorder, *flightDump, profiles)
		defer func() {
			if r := recover(); r != nil {
				dumpFlight(recorder, *flightDump, "panic")
				dumpProfiles(profiles, "panic")
				panic(r)
			}
			if recorder != nil && *flightDump != "" {
				dumpFlight(recorder, *flightDump, "exit")
			}
		}()
	}

	// The JSONL event stream opens before the sampler so runtime_sample
	// events interleave with the run's own telemetry in one file.
	var jsonl imtao.Observer
	if *traceOut != "" && strings.HasSuffix(*traceOut, ".jsonl") {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonl = imtao.NewJSONLObserver(f)
	}

	// Runtime vitals: on by default while serving diagnostics (that is what
	// -listen opts into), opt-in otherwise, -runtime-sample <0 disables.
	var sampler *imtao.RuntimeSampler
	if *sampleEvery > 0 || (*sampleEvery == 0 && *listen != "") {
		var vitalsOut []imtao.Observer
		if recorder != nil {
			vitalsOut = append(vitalsOut, recorder)
		}
		if jsonl != nil {
			vitalsOut = append(vitalsOut, jsonl)
		}
		sampler = imtao.NewRuntimeSampler(*sampleEvery, imtao.MultiObserver(vitalsOut...))
		sampler.Start()
		defer sampler.Stop()
	}

	if *listen != "" {
		addr, err := serveObs(*listen, recorder, sampler)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("diagnostics: http://%s/metrics and http://%s/debug/pprof/\n\n", addr, addr)
	}

	m, err := imtao.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}

	var raw *imtao.Instance
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		raw, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		d, err := workload.ParseDataset(*dataset)
		if err != nil {
			fatal(err)
		}
		p := imtao.DefaultParams(d)
		p.NumTasks, p.NumWorkers, p.NumCenters = *tasks, *workers, *centers
		p.Expiry, p.MaxT, p.Seed = *expiry, *maxT, *seed
		raw, err = imtao.Generate(p)
		if err != nil {
			fatal(err)
		}
	}

	in, err := imtao.Partition(raw)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d centers, %d workers, %d tasks, speed %.0f units/h\n",
		len(in.Centers), len(in.Workers), len(in.Tasks), in.Speed)
	fmt.Println("\nper-center load after Voronoi partition:")
	fmt.Printf("  %-8s %-8s %-8s\n", "center", "tasks", "workers")
	for _, c := range in.Centers {
		fmt.Printf("  %-8d %-8d %-8d\n", c.ID, len(c.Tasks), len(c.Workers))
	}

	opts := []imtao.RunOption{imtao.WithSeed(*seed), imtao.WithOptBudget(*budget)}
	var observers []imtao.Observer
	if recorder != nil {
		observers = append(observers, recorder)
	}
	if jsonl != nil {
		observers = append(observers, jsonl)
	}
	var tracer *imtao.Tracer
	if *traceOut != "" && !strings.HasSuffix(*traceOut, ".jsonl") {
		tracer = imtao.NewTracer(0)
		opts = append(opts, imtao.WithTracer(tracer))
	}
	if len(observers) > 0 {
		opts = append(opts, imtao.WithObserver(imtao.MultiObserver(observers...)))
	}
	var ledger *imtao.Ledger
	if *provOut != "" {
		ledger = imtao.NewLedger()
		opts = append(opts, imtao.WithProvenance(ledger))
	}
	setSimState("running")
	rep, err := imtao.Run(in, m, opts...)
	if err != nil {
		fatal(err)
	}
	setSimState("serving")
	if tracer != nil {
		if err := writeChromeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("span timeline (%d spans) written to %s — open in ui.perfetto.dev\n",
			tracer.Len(), *traceOut)
	} else if *traceOut != "" {
		fmt.Printf("telemetry trace streaming to %s\n", *traceOut)
	}
	if ledger != nil {
		f, err := os.Create(*provOut)
		if err != nil {
			fatal(err)
		}
		n, err := ledger.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("provenance ledger (%d game iterations, %d trials, %d bytes) written to %s — query with imtao-explain\n",
			ledger.IterCount(), ledger.TrialCount(), n, *provOut)
	}

	fmt.Printf("\nphase 1 (center-independent %s): assigned %d/%d, U_rho %.4f, %s\n",
		m.Assigner, rep.Phase1Assigned, len(in.Tasks), rep.Phase1Unfairness, rep.Phase1Time)
	fmt.Printf("phase 2 (%s): %d game iterations, %d transfers, %s\n",
		m.Collab, rep.Iterations, rep.Transfers, rep.Phase2Time)

	if *trace {
		fmt.Println("\ngame iterations:")
		fmt.Printf("  %-5s %-9s %-7s %-7s %-9s %-9s %-9s %-9s\n",
			"iter", "recipient", "worker", "from", "accepted", "rho", "assigned", "U_rho")
		for _, s := range rep.Trace {
			fmt.Printf("  %-5d %-9d %-7d %-7d %-9v %.3f→%.3f %-9d %-9.4f\n",
				s.Iteration, s.Recipient, s.Worker, s.Source, s.Accepted,
				s.RhoBefore, s.RhoAfter, s.Assigned, s.Unfairness)
		}
	}

	if len(rep.Solution.Transfers) > 0 {
		fmt.Println("\nworkforce transfers:")
		for _, t := range rep.Solution.Transfers {
			fmt.Printf("  worker %d: center %d → center %d\n", t.Worker, t.Src, t.Dst)
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteSolutionJSON(f, rep.Solution); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("\nsolution written to %s\n", *save)
	}

	fmt.Printf("\nfinal: assigned %d/%d (%.1f%%), unfairness U_rho %.4f\n",
		rep.Assigned, len(in.Tasks), 100*float64(rep.Assigned)/float64(len(in.Tasks)),
		rep.Unfairness)
	fmt.Println("\nper-center assignment ratios:")
	for ci, r := range rep.Ratios {
		fmt.Printf("  center %-3d rho = %.3f\n", ci, r)
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		err = render.Instance(f, in, rep.Solution, render.Options{
			ShowCells: true, ShowRoutes: true, ShowTransfers: true,
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nSVG written to %s\n", *svg)
	}

	u := imtao.ComputeUtilization(in, rep.Solution)
	fmt.Printf("\nworkforce utilization: %d/%d workers active, %d dispatched\n",
		u.Active, u.Workers, u.Dispatched)
	fmt.Printf("  %.2f tasks per active worker, capacity used %.0f%%\n",
		u.TasksPerActive, 100*u.CapacityUsed)
	fmt.Printf("  mean route %.2fh, longest route %.2fh\n", u.MeanRouteHours, u.MaxRouteHours)

	if *listen != "" {
		fmt.Printf("\nrun complete; still serving on %s — Ctrl-C to exit\n", *listen)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// writeChromeTrace exports the recorded span timeline as Chrome trace-event
// JSON, openable in ui.perfetto.dev or chrome://tracing.
func writeChromeTrace(path string, tr *imtao.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// watchSIGQUIT dumps the flight recorder — and, when continuous profiling
// is on, an out-of-cycle heap profile — whenever the process receives
// SIGQUIT (^\), the conventional "what are you doing right now" signal,
// without exiting.
func watchSIGQUIT(rec *imtao.FlightRecorder, path string, profiles *imtao.ProfileRing) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			dumpFlight(rec, path, "SIGQUIT")
			dumpProfiles(profiles, "sigquit")
		}
	}()
}

// dumpProfiles writes a crash heap profile next to the ring captures; the
// reason-named file is exempt from pruning, so it survives however long the
// process keeps running afterwards.
func dumpProfiles(profiles *imtao.ProfileRing, why string) {
	if profiles == nil {
		return
	}
	if path, err := profiles.DumpNow(why); err != nil {
		fmt.Fprintln(os.Stderr, "imtao-sim: profile dump:", err)
	} else {
		fmt.Fprintf(os.Stderr, "imtao-sim: heap profile (%s) written to %s\n", why, path)
	}
}

// dumpFlight writes the recorder's retained events as JSON Lines to path,
// or to stderr when path is empty, tagged with why (panic/SIGQUIT/exit).
func dumpFlight(rec *imtao.FlightRecorder, path, why string) {
	if rec == nil {
		return
	}
	if path == "" {
		fmt.Fprintf(os.Stderr, "imtao-sim: flight recorder dump (%s): last %d of %d events\n",
			why, rec.Len(), rec.Total())
		rec.WriteTo(os.Stderr)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imtao-sim: flight dump:", err)
		return
	}
	if _, err := rec.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, "imtao-sim: flight dump:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "imtao-sim: flight dump:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "imtao-sim: flight recorder dump (%s): last %d of %d events written to %s\n",
		why, rec.Len(), rec.Total(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imtao-sim:", err)
	os.Exit(1)
}
