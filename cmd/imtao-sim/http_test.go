package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"imtao"
)

// TestObsMux exercises the diagnostics handler in-process: after one
// pipeline run, /metrics must serve a well-formed Prometheus snapshot with
// the run counters, and the pprof index must answer.
func TestObsMux(t *testing.T) {
	if _, err := imtao.Solve(imtao.DefaultParams(imtao.SYN), imtao.SeqBDC); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obsMux(nil, nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE imtao_runs_total counter",
		"imtao_runs_total",
		"imtao_collab_iterations_total",
		"imtao_roadnet_cache_hits_total",
		"imtao_env_info{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d, body %.80q", code, body)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/: status %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}

	// Without -flight the endpoint explains itself with a 404.
	if code, body := get("/debug/flightrecorder"); code != http.StatusNotFound ||
		!strings.Contains(body, "-flight") {
		t.Errorf("/debug/flightrecorder without recorder: status %d, body %.80q", code, body)
	}
}

// TestHealthzEndpoint pins the liveness contract: 200 with valid JSON and
// the run state while healthy (no sampler, or a running one), 503 when a
// requested sampler has died, always Content-Type application/json.
func TestHealthzEndpoint(t *testing.T) {
	get := func(mux http.Handler) (int, string, map[string]any) {
		t.Helper()
		srv := httptest.NewServer(mux)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Fatalf("/healthz is not JSON: %v (%q)", err, body)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), parsed
	}

	setSimState("serving")

	// No sampler requested: healthy, sampler reported false.
	code, ct, parsed := get(obsMux(nil, nil))
	if code != http.StatusOK {
		t.Errorf("no sampler: status %d, want 200", code)
	}
	if ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type %q", ct)
	}
	if parsed["status"] != "serving" || parsed["sampler"] != false {
		t.Errorf("no sampler: body %v", parsed)
	}

	// Running sampler: healthy, sampler true.
	sampler := imtao.NewRuntimeSampler(time.Hour, nil)
	sampler.Start()
	code, _, parsed = get(obsMux(nil, sampler))
	if code != http.StatusOK || parsed["sampler"] != true {
		t.Errorf("live sampler: status %d, body %v", code, parsed)
	}

	// Stopped sampler: the watchdog died, so the probe must fail.
	sampler.Stop()
	code, ct, parsed = get(obsMux(nil, sampler))
	if code != http.StatusServiceUnavailable {
		t.Errorf("dead sampler: status %d, want 503", code)
	}
	if ct != "application/json; charset=utf-8" {
		t.Errorf("dead sampler: Content-Type %q", ct)
	}
	if parsed["sampler"] != false {
		t.Errorf("dead sampler: body %v", parsed)
	}
}

// TestFlightRecorderEndpoint wires a live recorder into the mux and checks
// the on-demand dump: NDJSON, one valid object per line, newest event last.
func TestFlightRecorderEndpoint(t *testing.T) {
	rec := imtao.NewFlightRecorder(8)
	for i := 0; i < 12; i++ {
		rec.Event("game_iter", imtao.Field{Key: "iter", Value: i})
	}
	srv := httptest.NewServer(obsMux(rec, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 8 {
		t.Fatalf("%d lines, want the 8 retained events:\n%s", len(lines), body)
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if rec["event"] != "game_iter" {
			t.Errorf("line %q: unexpected event", line)
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["seq"] != float64(5) {
		t.Errorf("oldest retained seq = %v, want 5 (12 events, ring of 8)", first["seq"])
	}
}
