package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"imtao"
)

// TestObsMux exercises the diagnostics handler in-process: after one
// pipeline run, /metrics must serve a well-formed Prometheus snapshot with
// the run counters, and the pprof index must answer.
func TestObsMux(t *testing.T) {
	if _, err := imtao.Solve(imtao.DefaultParams(imtao.SYN), imtao.SeqBDC); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obsMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE imtao_runs_total counter",
		"imtao_runs_total",
		"imtao_collab_iterations_total",
		"imtao_roadnet_cache_hits_total",
		"imtao_env_info{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d, body %.80q", code, body)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/: status %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}
}
