package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "imtao-sim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func TestSimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildSim(t)
	solPath := filepath.Join(t.TempDir(), "sol.json")
	cmd := exec.Command(bin, "-tasks", "50", "-workers", "15", "-centers", "4",
		"-trace", "-save", solPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"per-center load after Voronoi partition",
		"phase 1 (center-independent Seq)",
		"phase 2 (BDC)",
		"final: assigned",
		"workforce utilization",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if _, err := os.Stat(solPath); err != nil {
		t.Fatalf("solution not saved: %v", err)
	}
}

func TestSimLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	// Generate a dataset with datagen-compatible JSON via imtao-sim's own
	// sibling: easiest is generating with the library through a save file
	// from imtao-datagen — but to keep this test self-contained we just
	// build the datagen binary too.
	datagen := filepath.Join(t.TempDir(), "imtao-datagen")
	if out, err := exec.Command("go", "build", "-o", datagen, "../imtao-datagen").CombinedOutput(); err != nil {
		t.Fatalf("datagen build failed: %v\n%s", err, out)
	}
	scene := filepath.Join(t.TempDir(), "scene.json")
	if out, err := exec.Command(datagen, "-tasks", "30", "-workers", "10", "-centers", "3",
		"-out", scene).CombinedOutput(); err != nil {
		t.Fatalf("datagen run failed: %v\n%s", err, out)
	}
	bin := buildSim(t)
	out, err := exec.Command(bin, "-load", scene, "-method", "Seq-DC").CombinedOutput()
	if err != nil {
		t.Fatalf("sim -load failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "phase 2 (DC)") {
		t.Errorf("method not applied:\n%s", out)
	}
}

// TestSimTraceOut runs the binary with a non-.jsonl -trace-out and checks
// the emitted file is a valid Chrome trace whose span tree (carried in the
// events' span_id/parent_id args) contains the full pipeline hierarchy:
// run → phase1 → phase1_center and run → phase2 → game_iter → trial.
func TestSimTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildSim(t)
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	flightPath := filepath.Join(t.TempDir(), "flight.jsonl")
	cmd := exec.Command(bin, "-tasks", "400", "-workers", "100", "-centers", "20",
		"-trace-out", tracePath, "-flight", "256", "-flight-dump", flightPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}

	// Rebuild the span tree from the args and collect each span's ancestry.
	parent := make(map[float64]float64)
	name := make(map[float64]string)
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		id, ok := e.Args["span_id"].(float64)
		if !ok {
			t.Fatalf("X event %q lacks span_id", e.Name)
		}
		name[id] = e.Name
		if p, ok := e.Args["parent_id"].(float64); ok {
			parent[id] = p
		}
	}
	chains := make(map[string]bool)
	for id := range name {
		var path []string
		for cur := id; ; {
			path = append([]string{name[cur]}, path...)
			p, ok := parent[cur]
			if !ok || p == 0 {
				break
			}
			cur = p
		}
		chains[strings.Join(path, "→")] = true
	}
	for _, want := range []string{
		"run→phase1→phase1_center",
		"run→phase2→game_iter→trial",
	} {
		if !chains[want] {
			t.Errorf("span tree lacks chain %s; have:", want)
			for c := range chains {
				t.Logf("  %s", c)
			}
		}
	}

	// The -flight-dump file must hold valid JSONL telemetry.
	flight, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(flight)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flight dump is empty")
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("flight dump line %q: %v", line, err)
		}
	}
}

func TestSimRejectsBadMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildSim(t)
	if err := exec.Command(bin, "-method", "Magic-Plan").Run(); err == nil {
		t.Error("bad method must fail")
	}
}
