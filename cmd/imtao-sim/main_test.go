package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "imtao-sim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func TestSimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildSim(t)
	solPath := filepath.Join(t.TempDir(), "sol.json")
	cmd := exec.Command(bin, "-tasks", "50", "-workers", "15", "-centers", "4",
		"-trace", "-save", solPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"per-center load after Voronoi partition",
		"phase 1 (center-independent Seq)",
		"phase 2 (BDC)",
		"final: assigned",
		"workforce utilization",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if _, err := os.Stat(solPath); err != nil {
		t.Fatalf("solution not saved: %v", err)
	}
}

func TestSimLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	// Generate a dataset with datagen-compatible JSON via imtao-sim's own
	// sibling: easiest is generating with the library through a save file
	// from imtao-datagen — but to keep this test self-contained we just
	// build the datagen binary too.
	datagen := filepath.Join(t.TempDir(), "imtao-datagen")
	if out, err := exec.Command("go", "build", "-o", datagen, "../imtao-datagen").CombinedOutput(); err != nil {
		t.Fatalf("datagen build failed: %v\n%s", err, out)
	}
	scene := filepath.Join(t.TempDir(), "scene.json")
	if out, err := exec.Command(datagen, "-tasks", "30", "-workers", "10", "-centers", "3",
		"-out", scene).CombinedOutput(); err != nil {
		t.Fatalf("datagen run failed: %v\n%s", err, out)
	}
	bin := buildSim(t)
	out, err := exec.Command(bin, "-load", scene, "-method", "Seq-DC").CombinedOutput()
	if err != nil {
		t.Fatalf("sim -load failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "phase 2 (DC)") {
		t.Errorf("method not applied:\n%s", out)
	}
}

func TestSimRejectsBadMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildSim(t)
	if err := exec.Command(bin, "-method", "Magic-Plan").Run(); err == nil {
		t.Error("bad method must fail")
	}
}
