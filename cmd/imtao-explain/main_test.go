package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imtao/internal/model"
	"imtao/internal/provenance"
	"imtao/internal/workload"

	"imtao"
)

// run10k executes one method on the 10k preset with a ledger attached and
// writes the ledger to a file, returning report, ledger and path.
func run10k(t *testing.T, m imtao.Method, opts ...imtao.RunOption) (*imtao.Report, *imtao.Ledger, string) {
	t.Helper()
	p := workload.ScaleParams(workload.SYN, 10000)
	raw, err := imtao.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	led := imtao.NewLedger()
	opts = append(opts, imtao.WithProvenance(led), imtao.WithSeed(1))
	rep, err := imtao.Run(in, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.prov.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := led.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return rep, led, path
}

// taskStatus splits the task space by final assignment, returning one
// assigned task (with its final worker) and one unassigned task.
func taskStatus(rep *imtao.Report) (assigned model.TaskID, worker model.WorkerID, unassigned model.TaskID) {
	assignedTo := make(map[model.TaskID]model.WorkerID)
	for ci := range rep.Solution.PerCenter {
		for _, rt := range rep.Solution.PerCenter[ci].Routes {
			for _, tid := range rt.Tasks {
				assignedTo[tid] = rt.Worker
			}
		}
	}
	assigned, unassigned = -1, -1
	for t := 0; t < 10000; t++ {
		tid := model.TaskID(t)
		if w, ok := assignedTo[tid]; ok && assigned < 0 {
			assigned, worker = tid, w
		} else if !ok && unassigned < 0 {
			unassigned = tid
		}
		if assigned >= 0 && unassigned >= 0 {
			break
		}
	}
	return
}

// TestExplain10kAllEngines pins the why-task / why-not / transfers / summary
// answers against the live Report on the 10k preset, across the unsharded
// game, the sharded engine, DC's leftover-scope game and w/o-C.
func TestExplain10kAllEngines(t *testing.T) {
	cases := []struct {
		name string
		m    imtao.Method
		opts []imtao.RunOption
	}{
		{"Seq-BDC", imtao.SeqBDC, nil},
		{"Seq-BDC-sharded", imtao.SeqBDC, []imtao.RunOption{imtao.WithShards(4)}},
		{"Seq-DC", imtao.SeqDC, nil},
		{"Seq-w/o-C", imtao.SeqWoC, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, _, path := run10k(t, c.m, c.opts...)
			l, err := readLedger(path)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := summary(&buf, l); err != nil {
				t.Fatalf("summary: %v\n%s", err, buf.String())
			}
			wantFinal := fmt.Sprintf("final: %d/10000 tasks assigned, %d transfers",
				rep.Assigned, rep.Transfers)
			if !strings.Contains(buf.String(), wantFinal) {
				t.Errorf("summary lacks %q:\n%s", wantFinal, buf.String())
			}
			if rep.Transfers > 0 && !strings.Contains(buf.String(), "reproduce the recorded fingerprint") {
				t.Errorf("summary did not confirm replay:\n%s", buf.String())
			}

			aid, worker, uid := taskStatus(rep)
			buf.Reset()
			if err := whyTask(&buf, l, aid); err != nil {
				t.Fatalf("why-task %d: %v", aid, err)
			}
			wantServe := fmt.Sprintf("final: served by worker %d", worker)
			if !strings.Contains(buf.String(), wantServe) {
				t.Errorf("why-task %d lacks %q:\n%s", aid, wantServe, buf.String())
			}
			if uid >= 0 {
				buf.Reset()
				if err := whyTask(&buf, l, uid); err != nil {
					t.Fatalf("why-task %d: %v", uid, err)
				}
				if !strings.Contains(buf.String(), "final: UNASSIGNED") {
					t.Errorf("why-task %d not reported unassigned:\n%s", uid, buf.String())
				}
			}

			if len(rep.Solution.Transfers) > 0 {
				tr := rep.Solution.Transfers[0]
				buf.Reset()
				if err := whyNot(&buf, l, tr.Worker); err != nil {
					t.Fatalf("why-not %d: %v", tr.Worker, err)
				}
				wantDispatch := fmt.Sprintf("dispatched: center %d → center %d", tr.Src, tr.Dst)
				if !strings.Contains(buf.String(), wantDispatch) {
					t.Errorf("why-not %d lacks %q:\n%s", tr.Worker, wantDispatch, buf.String())
				}
				if !strings.Contains(buf.String(), "CHOSEN") {
					t.Errorf("why-not %d lacks a CHOSEN trial:\n%s", tr.Worker, buf.String())
				}

				buf.Reset()
				if err := transfers(&buf, l, tr.Dst); err != nil {
					t.Fatalf("transfers %d: %v", tr.Dst, err)
				}
				wantIn := fmt.Sprintf("IN: worker %d from center %d", tr.Worker, tr.Src)
				if !strings.Contains(buf.String(), wantIn) {
					t.Errorf("transfers %d lacks %q:\n%s", tr.Dst, wantIn, buf.String())
				}
			}
		})
	}
}

// TestExplainDiff10k pins the diff verdicts: a ledger against itself is
// identical; RBDC runs under different seeds diverge with a located first
// divergent step and final deltas.
func TestExplainDiff10k(t *testing.T) {
	_, _, pathA := run10k(t, imtao.SeqBDC)
	a, err := readLedger(pathA)
	if err != nil {
		t.Fatal(err)
	}
	d, err := provenance.DiffLedgers(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.FirstDivergence != -1 || !d.FingerprintEqual || len(d.MetaDiffs) != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}

	// Different RBDC seeds pick different recipients: the runs must diverge.
	p := workload.ScaleParams(workload.SYN, 10000)
	raw, err := imtao.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *imtao.Ledger {
		led := imtao.NewLedger()
		if _, err := imtao.Run(in, imtao.SeqRBDC, imtao.WithSeed(seed), imtao.WithProvenance(led)); err != nil {
			t.Fatal(err)
		}
		return led
	}
	l1, l2 := mk(1), mk(2)
	d, err = provenance.DiffLedgers(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MetaDiffs) != 1 || !strings.Contains(d.MetaDiffs[0], "seed") {
		t.Errorf("seed diff not reported: %v", d.MetaDiffs)
	}
	if d.FirstDivergence < 0 {
		t.Fatal("different-seed RBDC runs reported as identical step streams")
	}
	if d.DivergeA == "" || d.DivergeB == "" || d.DivergeA == d.DivergeB {
		t.Errorf("divergent steps not rendered: %q vs %q", d.DivergeA, d.DivergeB)
	}
}
