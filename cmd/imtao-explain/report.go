package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"imtao/internal/model"
	"imtao/internal/provenance"
	"imtao/internal/workload"

	"imtao"
)

// stageLabel renders a step's origin: the global game, one shard's game, or
// one exchange component.
func stageLabel(stage string, shard int) string {
	switch {
	case stage == provenance.StageGame && shard < 0:
		return "game"
	case stage == provenance.StageGame:
		return fmt.Sprintf("shard %d game", shard)
	default:
		return fmt.Sprintf("exchange component %d", shard)
	}
}

func modeLabel(m uint8) string {
	switch m {
	case provenance.TrialMemo:
		return "memoized"
	case provenance.TrialResumed:
		return "prefix-resumed"
	default:
		return "full trial"
	}
}

func summary(w io.Writer, l *provenance.Ledger) error {
	m := l.Meta
	fmt.Fprintf(w, "run: %s (%s engine, %s scope) — %d centers, %d workers, %d tasks, seed %d\n",
		m.Method, m.Engine, m.Scope, m.Centers, m.Workers, m.Tasks, m.Seed)
	p1 := 0
	scans := 0
	for i := range l.Phase1 {
		p1 += l.Phase1[i].Assigned
	}
	for _, evs := range l.Scans {
		scans += len(evs)
	}
	fmt.Fprintf(w, "phase 1: %d/%d tasks assigned, %d deadline rejections recorded\n",
		p1, m.Tasks, scans)
	for _, g := range l.Logs {
		acc := 0
		for i := range g.Iters {
			if g.Iters[i].Accepted {
				acc++
			}
		}
		fmt.Fprintf(w, "phase 2 %s: %d iterations, %d dispatches accepted\n",
			stageLabel(g.Stage, g.Shard), len(g.Iters), acc)
	}
	if s := l.Shard; s != nil {
		cut := "non-empty"
		if s.EmptyCut {
			cut = "empty"
		}
		fmt.Fprintf(w, "sharding: %d shards, %d boundary / %d exclusive workers, %s cut, %d exchange component(s)\n",
			s.Shards, s.BoundaryWorkers, s.ExclusiveWorkers, cut, s.Components)
	}
	if f := l.Final; f != nil {
		fmt.Fprintf(w, "final: %d/%d tasks assigned, %d transfers, unfairness %.4f, fingerprint %016x\n",
			f.Assigned, m.Tasks, len(f.Transfers), f.Unfairness, f.Fingerprint)
	}
	if c := l.Cert; c != nil {
		fmt.Fprintf(w, "certificate: %d witnesses, Φ=%.4f, equilibrium=%v (verify offline with `imtao-explain verify -scene <instance>`)\n",
			len(c.Centers), c.Phi, c.Equilibrium)
	} else {
		fmt.Fprintln(w, "certificate: none recorded")
	}
	rr, err := provenance.Replay(l)
	if err != nil {
		return fmt.Errorf("ledger does not replay: %w", err)
	}
	if f := l.Final; f != nil {
		if got := provenance.SolutionFingerprint(rr.Solution); got != f.Fingerprint {
			return fmt.Errorf("replay fingerprint %016x does not match recorded %016x — ledger incomplete", got, f.Fingerprint)
		}
		fmt.Fprintf(w, "replay: %d serialized steps reproduce the recorded fingerprint ✓\n", len(rr.Steps))
	}
	return nil
}

func whyTask(w io.Writer, l *provenance.Ledger, id model.TaskID) error {
	st, err := provenance.WhyTask(l, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "task %d — owned by center %d after the Voronoi partition\n", st.Task, st.Center)
	if st.Phase1Worker >= 0 {
		fmt.Fprintf(w, "phase 1: assigned to worker %d (stop %d on its route)\n",
			st.Phase1Worker, st.Phase1Pos+1)
	} else {
		fmt.Fprintf(w, "phase 1: left unassigned — center %d's workers were exhausted or arrived too late\n", st.Center)
	}
	for _, e := range st.Rejections {
		fmt.Fprintf(w, "  scan: worker %d would arrive at %.3fh, after the %.3fh expiry — rejected\n",
			e.Worker, e.Arrive, e.Expiry)
	}
	if len(st.Events) == 0 {
		fmt.Fprintln(w, "phase 2: no reassignment changed this task's custody")
	}
	for _, e := range st.Events {
		verb := "picked up by"
		if !e.Gained {
			verb = "dropped by"
		}
		fmt.Fprintf(w, "phase 2 [%s iter %d, step %d]: %s worker %d\n",
			stageLabel(e.Stage, e.Shard), e.Iter, e.StepIndex, verb, e.Worker)
	}
	if st.Final != nil {
		slack := st.Final.Expiry - st.Final.Arrive
		fmt.Fprintf(w, "final: served by worker %d at center %d, stop %d — arrival %.3fh vs expiry %.3fh (%.3fh to spare)\n",
			st.Final.Worker, st.Final.Center, st.Final.Pos+1,
			st.Final.Arrive, st.Final.Expiry, slack)
	} else {
		fmt.Fprintf(w, "final: UNASSIGNED — center %d never gained enough capacity to reach it in time\n", st.Center)
	}
	return nil
}

func whyNot(w io.Writer, l *provenance.Ledger, id model.WorkerID) error {
	st, err := provenance.WhyNotWorker(l, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "worker %d — home center %d\n", st.Worker, st.Home)
	switch {
	case st.Phase1Tasks != nil:
		fmt.Fprintf(w, "phase 1: served %d task(s) at home %v — busy workers never enter the transfer pool\n",
			len(st.Phase1Tasks), st.Phase1Tasks)
	case st.Pool:
		fmt.Fprintln(w, "phase 1: idle — entered the phase-2 transfer pool")
	}
	if len(st.Trials) > 0 {
		fmt.Fprintf(w, "phase 2: evaluated as a candidate %d time(s):\n", len(st.Trials))
		for _, tr := range st.Trials {
			verdict := "not chosen"
			if tr.Chosen {
				verdict = "CHOSEN"
			}
			fmt.Fprintf(w, "  [%s iter %d, step %d] center %d trial: would serve %d task(s) (%s) — %s\n",
				stageLabel(tr.Stage, tr.Shard), tr.Iter, tr.StepIndex,
				tr.Recipient, tr.Assigned, modeLabel(tr.Mode), verdict)
		}
	} else if st.Pool {
		fmt.Fprintln(w, "phase 2: never evaluated as a candidate")
	}
	if len(st.Pruned) > 0 {
		fmt.Fprintf(w, "phase 2: skipped by admissibility pruning at %d step(s), e.g. [%s iter %d] center %d (admission slack %.3fh) — too far to reach any task in time\n",
			len(st.Pruned), stageLabel(st.Pruned[0].Stage, st.Pruned[0].Shard),
			st.Pruned[0].Iter, st.Pruned[0].Recipient, st.Pruned[0].Slack)
	}
	if st.Transfer != nil {
		fmt.Fprintf(w, "dispatched: center %d → center %d (step %d)\n",
			st.Transfer.Src, st.Transfer.Dst, st.TransferStep)
	}
	if st.FinalCenter >= 0 {
		fmt.Fprintf(w, "final: serving %d task(s) at center %d\n", len(st.FinalTasks), st.FinalCenter)
	} else {
		fmt.Fprintln(w, "final: idle — no deviation that used this worker improved any center's ratio")
	}
	return nil
}

func transfers(w io.Writer, l *provenance.Ledger, id model.CenterID) error {
	ch, err := provenance.TransferChain(l, id)
	if err != nil {
		return err
	}
	if p := ch.Phase1; p != nil {
		fmt.Fprintf(w, "center %d — phase 1: %d/%d tasks assigned (ρ=%.4f), %d idle workers, %d leftover tasks\n",
			ch.Center, p.Assigned, p.Tasks, p.Rho, len(p.LeftWorkers), len(p.LeftTasks))
	}
	if len(ch.Steps) == 0 {
		fmt.Fprintln(w, "phase 2: no step offered this center a worker or took one from it")
	}
	for _, s := range ch.Steps {
		loc := fmt.Sprintf("[%s iter %d, step %d]", stageLabel(s.Stage, s.Shard), s.Iter, s.StepIndex)
		switch {
		case s.Accepted && s.Recipient == ch.Center:
			fmt.Fprintf(w, "%s IN: worker %d from center %d — ρ %.4f→%.4f, Φ=%.4f (%d trials, %d pruned)\n",
				loc, s.Worker, s.Source, s.RhoBefore, s.RhoAfter, s.Phi, s.Candidates, s.PrunedN)
		case s.Accepted:
			fmt.Fprintf(w, "%s OUT: worker %d dispatched to center %d (its ρ %.4f→%.4f)\n",
				loc, s.Worker, s.Recipient, s.RhoBefore, s.RhoAfter)
		default:
			fmt.Fprintf(w, "%s offer rejected: no candidate improved ρ=%.4f (%d trials, %d pruned)\n",
				loc, s.RhoBefore, s.Candidates, s.PrunedN)
		}
	}
	fmt.Fprintf(w, "final: %d task(s) assigned, ρ=%.4f\n", ch.FinalAssigned, ch.FinalRho)
	if wit := ch.Witness; wit != nil {
		fmt.Fprintf(w, "witness: %d candidates swept (%d pruned), best deviation ρ=%.4f — %s\n",
			wit.Candidates, wit.Pruned, wit.BestRho, witnessVerdict(wit))
	}
	return nil
}

func witnessVerdict(wit *provenance.Witness) string {
	if wit.BestWorker < 0 {
		return "no improving deviation exists"
	}
	return fmt.Sprintf("worker %d could still improve it (non-equilibrium evidence)", wit.BestWorker)
}

func tasksCmd(args []string) error {
	fs := flag.NewFlagSet("tasks", flag.ContinueOnError)
	status := fs.String("status", "", "filter: assigned or unassigned")
	n := fs.Int("n", 20, "maximum tasks listed (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("tasks: expected a ledger file")
	}
	if *status != "" && *status != "assigned" && *status != "unassigned" {
		return fmt.Errorf("tasks: -status must be assigned or unassigned")
	}
	l, err := readLedger(fs.Arg(0))
	if err != nil {
		return err
	}
	if l.Final == nil {
		return fmt.Errorf("ledger has no final section")
	}
	worker := make(map[model.TaskID]model.WorkerID)
	for i := range l.Final.Routes {
		rt := &l.Final.Routes[i]
		for _, t := range rt.Tasks {
			worker[t] = rt.Worker
		}
	}
	listed := 0
	for t := 0; t < l.Meta.Tasks; t++ {
		tid := model.TaskID(t)
		wid, ok := worker[tid]
		if (*status == "assigned" && !ok) || (*status == "unassigned" && ok) {
			continue
		}
		if *n > 0 && listed >= *n {
			fmt.Println("  ...")
			break
		}
		if ok {
			fmt.Printf("task %d: assigned to worker %d\n", tid, wid)
		} else {
			fmt.Printf("task %d: unassigned\n", tid)
		}
		listed++
	}
	return nil
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	scene := fs.String("scene", "", "instance JSON (imtao-datagen output) the run was recorded on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *scene == "" {
		return fmt.Errorf("verify: expected -scene <instance.json> and a ledger file")
	}
	l, err := readLedger(fs.Arg(0))
	if err != nil {
		return err
	}
	if l.Cert == nil {
		return fmt.Errorf("ledger carries no certificate (Opt assigner and w/o-C runs record none)")
	}
	f, err := os.Open(*scene)
	if err != nil {
		return err
	}
	raw, err := workload.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	in, err := imtao.Partition(raw)
	if err != nil {
		return err
	}
	rr, err := provenance.Replay(l)
	if err != nil {
		return fmt.Errorf("ledger does not replay: %w", err)
	}
	if l.Final != nil {
		if got := provenance.SolutionFingerprint(rr.Solution); got != l.Final.Fingerprint {
			return fmt.Errorf("replay fingerprint %016x does not match recorded %016x", got, l.Final.Fingerprint)
		}
	}
	if err := l.Cert.Verify(in, rr.Solution); err != nil {
		return fmt.Errorf("certificate INVALID: %w", err)
	}
	fmt.Printf("certificate VALID: %d witnesses reproduced, equilibrium=%v, Φ=%.4f, bound to solution %016x\n",
		len(l.Cert.Centers), l.Cert.Equilibrium, l.Cert.Phi, l.Cert.SolutionFP)
	return nil
}

func diffCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff: expected two ledger files")
	}
	a, err := readLedger(args[0])
	if err != nil {
		return err
	}
	b, err := readLedger(args[1])
	if err != nil {
		return err
	}
	d, err := provenance.DiffLedgers(a, b)
	if err != nil {
		return err
	}
	for _, line := range d.MetaDiffs {
		fmt.Println("meta:", line)
	}
	if len(d.MetaDiffs) == 0 {
		fmt.Println("meta: identical")
	}
	fmt.Printf("steps: %d vs %d\n", d.StepsA, d.StepsB)
	if d.FirstDivergence < 0 {
		fmt.Println("step streams: identical")
	} else {
		fmt.Printf("first divergence at step %d:\n  A: %s\n  B: %s\n",
			d.FirstDivergence, orNone(d.DivergeA), orNone(d.DivergeB))
	}
	if d.FingerprintEqual {
		fmt.Println("final solutions: identical (fingerprints match)")
		return nil
	}
	fmt.Printf("final solutions differ: %d task(s) only in A, %d only in B, %d moved between workers\n",
		len(d.OnlyA), len(d.OnlyB), len(d.Moved))
	printSome := func(label string, ids []model.TaskID) {
		if len(ids) == 0 {
			return
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		max := len(ids)
		suffix := ""
		if max > 10 {
			max, suffix = 10, ", ..."
		}
		fmt.Printf("  %s: %v%s\n", label, ids[:max], suffix)
	}
	printSome("only A", d.OnlyA)
	printSome("only B", d.OnlyB)
	for i, mv := range d.Moved {
		if i >= 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  task %d: worker %d (A) vs worker %d (B)\n", mv.Task, mv.WorkerA, mv.WorkerB)
	}
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(stream ended)"
	}
	return s
}
