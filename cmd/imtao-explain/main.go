// Command imtao-explain answers "why" questions about a recorded IMTAO run
// from its provenance ledger (imtao-sim -provenance-out, or any
// Ledger.WriteTo stream) — no re-run needed.
//
// Usage:
//
//	imtao-explain summary run.prov.jsonl                 # run overview
//	imtao-explain why-task 123 run.prov.jsonl            # one task's lifecycle
//	imtao-explain why-not 45 run.prov.jsonl              # why worker 45 was(n't) dispatched
//	imtao-explain transfers 7 run.prov.jsonl             # center 7's dispatch chain
//	imtao-explain tasks -status unassigned -n 10 run.prov.jsonl
//	imtao-explain verify -scene scene.json run.prov.jsonl # re-check the equilibrium certificate
//	imtao-explain diff a.prov.jsonl b.prov.jsonl         # where two runs diverged
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"imtao/internal/model"
	"imtao/internal/provenance"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "summary":
		err = withLedger(rest, 0, func(l *provenance.Ledger, _ []string) error {
			return summary(os.Stdout, l)
		})
	case "why-task":
		err = withLedger(rest, 1, func(l *provenance.Ledger, a []string) error {
			id, err := strconv.Atoi(a[0])
			if err != nil {
				return fmt.Errorf("task id %q: %w", a[0], err)
			}
			return whyTask(os.Stdout, l, model.TaskID(id))
		})
	case "why-not":
		err = withLedger(rest, 1, func(l *provenance.Ledger, a []string) error {
			id, err := strconv.Atoi(a[0])
			if err != nil {
				return fmt.Errorf("worker id %q: %w", a[0], err)
			}
			return whyNot(os.Stdout, l, model.WorkerID(id))
		})
	case "transfers":
		err = withLedger(rest, 1, func(l *provenance.Ledger, a []string) error {
			id, err := strconv.Atoi(a[0])
			if err != nil {
				return fmt.Errorf("center id %q: %w", a[0], err)
			}
			return transfers(os.Stdout, l, model.CenterID(id))
		})
	case "tasks":
		err = tasksCmd(rest)
	case "verify":
		err = verifyCmd(rest)
	case "diff":
		err = diffCmd(rest)
	default:
		fmt.Fprintf(os.Stderr, "imtao-explain: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "imtao-explain:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: imtao-explain <command> [args] <ledger.jsonl>

commands:
  summary   <ledger>                       run overview: meta, phases, verdicts
  why-task  <task-id> <ledger>             one task's full decision lifecycle
  why-not   <worker-id> <ledger>           why a worker was (not) dispatched
  transfers <center-id> <ledger>           a center's dispatch chain with its evidence
  tasks     [-status assigned|unassigned] [-n N] <ledger>
                                           list final task placements
  verify    -scene <instance.json> <ledger>
                                           re-validate the equilibrium certificate offline
  diff      <ledger-a> <ledger-b>          first divergence and final deltas of two runs
`)
}

// withLedger parses the trailing ledger path after want positional args.
func withLedger(args []string, want int, fn func(*provenance.Ledger, []string) error) error {
	if len(args) != want+1 {
		return fmt.Errorf("expected %d argument(s) and a ledger file, got %d args", want, len(args))
	}
	l, err := readLedger(args[want])
	if err != nil {
		return err
	}
	return fn(l, args[:want])
}

func readLedger(path string) (*provenance.Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := provenance.ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
