package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const repoRules = "../../perfgate.rules.json"

var committed = []string{
	"../../BENCH_parallel.json",
	"../../BENCH_oracle.json",
	"../../BENCH_game.json",
	"../../BENCH_shard.json",
}

// TestGatePassesOnCommittedBaselines is the self-consistency acceptance
// check: every committed artifact diffed against itself under the repo
// rules must pass, and must actually gate something.
func TestGatePassesOnCommittedBaselines(t *testing.T) {
	args := []string{"-rules", repoRules, "-v"}
	for _, p := range committed {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("committed baseline missing: %v", err)
		}
		args = append(args, p+"="+p)
	}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("no PASS line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "perfgate: 0 gated") {
		t.Errorf("a pair gated nothing:\n%s", out.String())
	}
}

// TestGateCatchesDoctoredBench doctors a copy of the committed game bench —
// a 10x phase-2 slowdown and a lost equilibrium — and requires a nonzero
// exit naming both regressions.
func TestGateCatchesDoctoredBench(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_game.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	presets := doc["presets"].([]any)
	p0 := presets[0].(map[string]any)
	p0["phase2_ms"] = p0["phase2_ms"].(float64) * 10
	p0["equilibrium_ok"] = false

	doctored := filepath.Join(t.TempDir(), "BENCH_game_doctored.json")
	enc, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, enc, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-rules", repoRules, "../../BENCH_game.json=" + doctored}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"phase2_ms", "equilibrium_ok", "REGRESSION"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report does not name %q:\n%s", want, out.String())
		}
	}
}

// TestGatePartialFresh gates a fresh artifact holding only the 10k preset
// against the full committed baseline: the 50k/100k metrics are skipped,
// the 10k slice still gates.
func TestGatePartialFresh(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_game.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["presets"] = doc["presets"].([]any)[:1]
	partial := filepath.Join(t.TempDir(), "BENCH_game_10k.json")
	enc, _ := json.Marshal(doc)
	if err := os.WriteFile(partial, enc, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-rules", repoRules, "../../BENCH_game.json=" + partial}, &out, &errb); code != 0 {
		t.Fatalf("partial fresh must pass, exit %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}

func TestGateRejectsMixedPair(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-rules", repoRules, "../../BENCH_game.json=../../BENCH_oracle.json"},
		&out, &errb)
	if code != 2 {
		t.Fatalf("mixed benchmarks must be a usage error, exit %d\n%s", code, errb.String())
	}
}

func TestGateUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no pairs: exit %d, want 2", code)
	}
	if code := run([]string{"-rules", repoRules, "notapair"}, &out, &errb); code != 2 {
		t.Errorf("malformed pair: exit %d, want 2", code)
	}
	if code := run([]string{"-rules", "/nonexistent.json", "a=b"}, &out, &errb); code != 2 {
		t.Errorf("missing rules: exit %d, want 2", code)
	}
}
