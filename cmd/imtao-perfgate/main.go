// Command imtao-perfgate diffs freshly produced benchmark artifacts against
// committed baselines and exits nonzero on regression — the CI gate over
// BENCH_parallel.json, BENCH_oracle.json, and BENCH_game.json.
//
// Usage:
//
//	imtao-perfgate [-rules perfgate.rules.json] [-v] baseline.json=fresh.json ...
//
// Each positional argument pairs a committed baseline with a fresh artifact.
// Metrics are gated per the rules file (see DESIGN.md §12): deterministic
// outputs (iteration counts, fingerprints, assignment totals) must match
// exactly, wall-clock metrics get wide per-rule headroom so the gate holds
// across machines, and comparison runs over the intersection of the two
// documents — a fresh run covering only the 10k preset is gated against the
// 10k slice of the full committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"imtao/internal/perfgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imtao-perfgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesPath := fs.String("rules", "perfgate.rules.json", "gating rules JSON")
	verbose := fs.Bool("v", false, "print every gated comparison, not only regressions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pairs := fs.Args()
	if len(pairs) == 0 {
		fmt.Fprintln(stderr, "imtao-perfgate: no baseline=fresh pairs given")
		fs.Usage()
		return 2
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		fmt.Fprintln(stderr, "imtao-perfgate:", err)
		return 2
	}
	rules, err := perfgate.LoadRules(rf)
	rf.Close()
	if err != nil {
		fmt.Fprintln(stderr, "imtao-perfgate:", err)
		return 2
	}

	failed := false
	for _, pair := range pairs {
		basePath, freshPath, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(stderr, "imtao-perfgate: argument %q is not baseline=fresh\n", pair)
			return 2
		}
		base, err := loadFlat(basePath)
		if err != nil {
			fmt.Fprintln(stderr, "imtao-perfgate:", err)
			return 2
		}
		fresh, err := loadFlat(freshPath)
		if err != nil {
			fmt.Fprintln(stderr, "imtao-perfgate:", err)
			return 2
		}
		// Refuse to diff artifacts of different benchmarks: a mixed-up pair
		// would gate nothing (disjoint paths) or, worse, nonsense.
		if bb, fb := base["benchmark"], fresh["benchmark"]; bb != fb {
			fmt.Fprintf(stderr, "imtao-perfgate: %s is %q but %s is %q\n",
				basePath, bb, freshPath, fb)
			return 2
		}

		rep := perfgate.Compare(base, fresh, rules)
		fmt.Fprintf(stdout, "== %s vs %s\n", basePath, freshPath)
		rep.Write(stdout, *verbose)
		if !rep.OK() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(stderr, "imtao-perfgate: FAIL")
		return 1
	}
	fmt.Fprintln(stdout, "imtao-perfgate: PASS")
	return 0
}

func loadFlat(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return perfgate.Flatten(doc), nil
}
