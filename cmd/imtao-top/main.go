// Command imtao-top is a live terminal dashboard for a running imtao-sim
// (or anything else serving the imtao /metrics exposition): it polls the
// endpoint, keeps a short history of the headline series, and redraws a
// sparkline view in place — game convergence (Φ), iteration latency
// quantiles, GC pauses, heap, and the game engine's work counters.
//
// Usage:
//
//	imtao-sim -listen :8080 &          # something to watch
//	imtao-top -addr 127.0.0.1:8080     # live view, Ctrl-C to exit
//	imtao-top -addr 127.0.0.1:8080 -once   # one plain snapshot (CI smoke)
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"imtao/internal/textplot"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "host:port (or full URL) of the /metrics endpoint to watch")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "poll once, print a plain snapshot, and exit (no screen control)")
		width    = flag.Int("width", 48, "sparkline width in columns")
	)
	flag.Parse()

	url := metricsURL(*addr)
	d := newDashboard(url, *width)

	if *once {
		if err := d.poll(); err != nil {
			fmt.Fprintln(os.Stderr, "imtao-top:", err)
			os.Exit(1)
		}
		fmt.Print(d.render(false))
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	t := time.NewTicker(*interval)
	defer t.Stop()
	fmt.Print("\x1b[2J") // clear once; afterwards redraw in place
	for {
		if err := d.poll(); err != nil {
			d.lastErr = err
		} else {
			d.lastErr = nil
		}
		fmt.Print("\x1b[H" + d.render(true))
		select {
		case <-stop:
			fmt.Println()
			return
		case <-t.C:
		}
	}
}

// metricsURL normalises -addr: "host:port" and bare URLs both end at
// /metrics over http.
func metricsURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.HasSuffix(addr, "/metrics") {
		addr = strings.TrimRight(addr, "/") + "/metrics"
	}
	return addr
}

// series is the ordered list of dashboard rows: the exposition key each row
// tracks, its display label, and the unit its value renders in.
var seriesRows = []struct {
	key, label, unit string
}{
	{"imtao_game_phi", "Φ potential", "raw"},
	{quantileKey("imtao_collab_iter_seconds", "0.5"), "iter p50", "seconds"},
	{quantileKey("imtao_collab_iter_seconds", "0.99"), "iter p99", "seconds"},
	{quantileKey("imtao_shard_iter_seconds", "0.99"), "shard iter p99", "seconds"},
	{"imtao_shard_skew", "shard skew", "raw"},
	{"imtao_shard_load_skew", "shard load skew", "raw"},
	{"imtao_shard_colors", "shard colors", "raw"},
	{"imtao_shard_autotune_shards", "autotuned shards", "raw"},
	{quantileKey("imtao_phase1_center_seconds", "0.99"), "phase1 center p99", "seconds"},
	{quantileKey("imtao_roadnet_dijkstra_seconds", "0.99"), "dijkstra p99", "seconds"},
	{"imtao_runtime_gc_pause_p99_seconds", "GC pause p99", "seconds"},
	{"imtao_runtime_heap_live_bytes", "heap live", "bytes"},
	{"imtao_runtime_heap_goal_bytes", "heap goal", "bytes"},
	{"imtao_runtime_goroutines", "goroutines", "raw"},
}

// counterRows are cumulative totals rendered with a per-second rate instead
// of a sparkline.
var counterRows = []struct {
	key, label string
}{
	{"imtao_collab_iterations_total", "iterations"},
	{"imtao_collab_trials_total", "trials"},
	{"imtao_collab_memo_hits_total", "memo hits"},
	{"imtao_collab_candidates_pruned_total", "pruned"},
	{"imtao_roadnet_dijkstra_runs_total", "dijkstra runs"},
	{"imtao_shard_games_total", "shard games"},
	{"imtao_shard_exchange_iterations_total", "exchange iters"},
}

// dashboard accumulates per-series history across polls and renders the
// terminal view.
type dashboard struct {
	url    string
	width  int
	client *http.Client

	history  map[string][]float64
	snapshot map[string]float64
	prev     map[string]float64
	prevAt   time.Time
	lastAt   time.Time
	ticks    int
	lastErr  error
}

func newDashboard(url string, width int) *dashboard {
	if width <= 0 {
		width = 48
	}
	return &dashboard{
		url:     url,
		width:   width,
		client:  &http.Client{Timeout: 5 * time.Second},
		history: make(map[string][]float64),
	}
}

// poll scrapes the endpoint once and folds the sample into the history.
func (d *dashboard) poll() error {
	resp, err := d.client.Get(d.url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", d.url, resp.StatusCode)
	}
	m, err := parseMetrics(resp.Body)
	if err != nil {
		return err
	}
	d.prev, d.prevAt = d.snapshot, d.lastAt
	d.snapshot, d.lastAt = m, time.Now()
	d.ticks++
	for _, row := range seriesRows {
		if v, ok := m[row.key]; ok && !math.IsNaN(v) {
			h := append(d.history[row.key], v)
			if len(h) > d.width {
				h = h[len(h)-d.width:]
			}
			d.history[row.key] = h
		}
	}
	return nil
}

// render draws the dashboard; live mode appends erase-to-eol to every line
// so in-place redraws never leave stale characters behind.
func (d *dashboard) render(live bool) string {
	eol := "\n"
	if live {
		eol = "\x1b[K\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "imtao-top — %s   tick %d   %s%s", d.url, d.ticks,
		d.lastAt.Format("15:04:05"), eol)
	if d.lastErr != nil {
		fmt.Fprintf(&b, "  SCRAPE FAILED: %v%s", d.lastErr, eol)
	}
	b.WriteString(eol)
	for _, row := range seriesRows {
		v, ok := d.snapshot[row.key]
		if !ok || math.IsNaN(v) {
			fmt.Fprintf(&b, "  %-18s %10s%s", row.label, "—", eol)
			continue
		}
		fmt.Fprintf(&b, "  %-18s %10s  %s%s", row.label, formatUnit(v, row.unit),
			textplot.Spark(d.history[row.key], d.width), eol)
	}
	b.WriteString(eol)
	for _, row := range counterRows {
		v, ok := d.snapshot[row.key]
		if !ok {
			continue
		}
		rate := ""
		if d.prev != nil && !d.prevAt.IsZero() {
			if pv, ok := d.prev[row.key]; ok {
				dt := d.lastAt.Sub(d.prevAt).Seconds()
				if dt > 0 && v >= pv {
					rate = fmt.Sprintf("  (+%.0f/s)", (v-pv)/dt)
				}
			}
		}
		fmt.Fprintf(&b, "  %-18s %10.0f%s%s", row.label, v, rate, eol)
	}
	return b.String()
}

// formatUnit renders a value in its row's unit with a human scale.
func formatUnit(v float64, unit string) string {
	switch unit {
	case "seconds":
		switch {
		case v < 1e-3:
			return fmt.Sprintf("%.1fµs", v*1e6)
		case v < 1:
			return fmt.Sprintf("%.2fms", v*1e3)
		default:
			return fmt.Sprintf("%.2fs", v)
		}
	case "bytes":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", v/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMiB", v/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", v/(1<<10))
		default:
			return fmt.Sprintf("%.0fB", v)
		}
	default:
		if v == math.Trunc(v) && math.Abs(v) < 1e9 {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.3f", v)
	}
}
