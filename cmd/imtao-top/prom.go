package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseMetrics reads a Prometheus text-format (0.0.4) exposition into a flat
// map keyed by the full series identifier as written — "imtao_runs_total",
// "imtao_collab_iter_seconds{quantile=\"0.99\"}" — which is exactly how the
// dashboard addresses them. Comment and blank lines are skipped; NaN values
// (the summary convention for "no samples yet") parse fine and are left for
// the renderer to blank out. Malformed lines are skipped rather than fatal:
// a dashboard should survive a half-written scrape.
func parseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series name is
		// everything before it (labels may contain spaces inside quotes, so
		// split from the right).
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no metrics parsed — is this a Prometheus text exposition?")
	}
	return out, nil
}

// quantileKey builds the exposition key of one summary quantile line.
func quantileKey(name string, q string) string {
	return name + `{quantile="` + q + `"}`
}
