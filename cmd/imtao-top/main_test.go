package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

const sampleExposition = `# HELP imtao_runs_total pipeline runs
# TYPE imtao_runs_total counter
imtao_runs_total 3
# TYPE imtao_game_phi gauge
imtao_game_phi 17.25
# TYPE imtao_collab_iter_seconds summary
imtao_collab_iter_seconds{quantile="0.5"} 0.0012
imtao_collab_iter_seconds{quantile="0.99"} 0.0047
imtao_collab_iter_seconds{quantile="0.999"} NaN
imtao_collab_iter_seconds_sum 1.5
imtao_collab_iter_seconds_count 1200
imtao_runtime_heap_live_bytes 1.2582912e+07
imtao_collab_trials_total 420
# TYPE imtao_shard_iter_seconds summary
imtao_shard_iter_seconds{quantile="0.5"} 0.0014
imtao_shard_iter_seconds{quantile="0.99"} 0.0031
imtao_shard_skew 1.8
imtao_shard_load_skew 1.3
imtao_shard_colors 3
imtao_shard_autotune_shards 8
imtao_shard_games_total 8
imtao_shard_exchange_iterations_total 95
`

// TestParseMetrics covers the exposition shapes the dashboard must survive:
// labelled summary lines, scientific notation, NaN, comments, and junk.
func TestParseMetrics(t *testing.T) {
	m, err := parseMetrics(strings.NewReader(sampleExposition + "garbage line\nalso-bad\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m["imtao_runs_total"] != 3 {
		t.Errorf("runs_total = %g", m["imtao_runs_total"])
	}
	if m[quantileKey("imtao_collab_iter_seconds", "0.99")] != 0.0047 {
		t.Errorf("iter p99 = %g", m[quantileKey("imtao_collab_iter_seconds", "0.99")])
	}
	if !math.IsNaN(m[quantileKey("imtao_collab_iter_seconds", "0.999")]) {
		t.Error("NaN summary line must parse as NaN")
	}
	if m["imtao_runtime_heap_live_bytes"] != 1.2582912e7 {
		t.Errorf("scientific notation: %g", m["imtao_runtime_heap_live_bytes"])
	}
	if _, err := parseMetrics(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty exposition should error")
	}
}

// TestMetricsURL pins the -addr normalisation.
func TestMetricsURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080":                "http://127.0.0.1:8080/metrics",
		"http://127.0.0.1:8080":         "http://127.0.0.1:8080/metrics",
		"http://127.0.0.1:8080/":        "http://127.0.0.1:8080/metrics",
		"http://127.0.0.1:8080/metrics": "http://127.0.0.1:8080/metrics",
		"https://sim.example.com:443":   "https://sim.example.com:443/metrics",
	}
	for in, want := range cases {
		if got := metricsURL(in); got != want {
			t.Errorf("metricsURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDashboardPollRender runs the full scrape → history → render path
// against a live test server, twice, and checks the view carries the
// headline rows, sparklines, and counter rates.
func TestDashboardPollRender(t *testing.T) {
	trials := 420.0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := strings.Replace(sampleExposition, "imtao_collab_trials_total 420",
			"imtao_collab_trials_total "+strconv.FormatFloat(trials, 'f', -1, 64), 1)
		w.Write([]byte(body))
		trials += 100
	}))
	defer srv.Close()

	d := newDashboard(metricsURL(srv.URL), 16)
	for i := 0; i < 2; i++ {
		if err := d.poll(); err != nil {
			t.Fatal(err)
		}
	}
	out := d.render(false)
	for _, want := range []string{
		"Φ potential", "17.25",
		"iter p50", "1.20ms",
		"iter p99", "4.70ms",
		"shard iter p99", "3.10ms",
		"shard skew", "1.800",
		"shard load skew", "1.300",
		"shard colors",
		"autotuned shards",
		"exchange iters", "95",
		"heap live", "12.0MiB",
		"trials",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard lacks %q:\n%s", want, out)
		}
	}
	// Two polls of a moving counter yield a rate.
	if !strings.Contains(out, "/s)") {
		t.Errorf("dashboard lacks a counter rate:\n%s", out)
	}
	// History accumulated → the Φ row renders a sparkline glyph.
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("dashboard lacks sparklines:\n%s", out)
	}
	// Plain render must not carry screen-control sequences; live must.
	if strings.Contains(out, "\x1b[") {
		t.Error("plain render contains ANSI escapes")
	}
	if !strings.Contains(d.render(true), "\x1b[K") {
		t.Error("live render lacks erase-to-eol")
	}
	// Absent series render as a dash, not a crash.
	if !strings.Contains(out, "—") {
		t.Errorf("missing runtime series should render as —:\n%s", out)
	}
}
