// Command imtao-datagen generates CMCTA datasets (paper §VI-A) and writes
// them to JSON or CSV for later runs with imtao-sim -load.
//
// Usage:
//
//	imtao-datagen -dataset gm  -out gm.json
//	imtao-datagen -dataset syn -tasks 800 -format csv -out syn800.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"imtao"
	"imtao/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "syn", "dataset generator: gm or syn")
		tasks   = flag.Int("tasks", 400, "number of tasks |S|")
		workers = flag.Int("workers", 100, "number of workers |W|")
		centers = flag.Int("centers", 20, "number of centers |C|")
		expiry  = flag.Float64("expiry", 1.0, "task expiration time e in hours")
		maxT    = flag.Int("maxt", 4, "worker capacity maxT")
		seed    = flag.Int64("seed", 1, "generator seed")
		preset  = flag.String("preset", "", "preset instead of explicit counts: corridor, twincities, ringroad, hotspot, or a scale point like scale10k / scale100k / scale1m")
		format  = flag.String("format", "json", "output format: json or csv")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	d, err := workload.ParseDataset(*dataset)
	if err != nil {
		fatal(err)
	}
	p := imtao.DefaultParams(d)
	p.NumTasks, p.NumWorkers, p.NumCenters = *tasks, *workers, *centers
	p.Expiry, p.MaxT, p.Seed = *expiry, *maxT, *seed
	var in *imtao.Instance
	switch {
	case strings.HasPrefix(*preset, "scale"):
		// Scale presets (scale10k, scale100k, scale1m, or any scale<N>[k|m])
		// override the entity counts with the benchmark's density ratios;
		// dataset, expiry, capacity and seed flags still apply. scale1m is
		// 1M tasks / 250k workers / 5000 centers: expect ~0.7 GB peak
		// resident while generating and ~134 MB of JSON output (README
		// "Scaling up" documents the full footprint).
		n, serr := workload.ParseScaleSize(strings.TrimPrefix(*preset, "scale"))
		if serr != nil {
			fatal(serr)
		}
		sp := workload.ScaleParams(d, n)
		p.NumTasks, p.NumWorkers, p.NumCenters = sp.NumTasks, sp.NumWorkers, sp.NumCenters
		in, err = imtao.Generate(p)
	case *preset != "":
		var pr workload.Preset
		switch *preset {
		case "corridor":
			pr = workload.Corridor
		case "twincities":
			pr = workload.TwinCities
		case "ringroad":
			pr = workload.RingRoad
		case "hotspot":
			pr = workload.Hotspot
		default:
			fatal(fmt.Errorf("unknown preset %q", *preset))
		}
		in, err = workload.GeneratePreset(pr, p)
	default:
		in, err = imtao.Generate(p)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = workload.WriteJSON(w, in)
	case "csv":
		err = workload.WriteCSV(w, in)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d centers, %d workers, %d tasks\n",
			*out, len(in.Centers), len(in.Workers), len(in.Tasks))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imtao-datagen:", err)
	os.Exit(1)
}
