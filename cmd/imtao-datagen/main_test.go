package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The datagen CLI is exercised end to end through `go run`-style execution
// of the built binary: build once, then drive it with real flags.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "imtao-datagen")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func TestCLIGeneratesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildCLI(t)
	out := filepath.Join(t.TempDir(), "scene.json")
	cmd := exec.Command(bin, "-tasks", "10", "-workers", "4", "-centers", "2", "-out", out)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("run failed: %v\n%s", err, msg)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"tasks"`) || !strings.Contains(s, `"centers"`) {
		t.Fatalf("unexpected output: %.200s", s)
	}
}

func TestCLIPresetAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildCLI(t)
	out := filepath.Join(t.TempDir(), "ring.csv")
	cmd := exec.Command(bin, "-preset", "ringroad", "-tasks", "8", "-workers", "3",
		"-centers", "2", "-format", "csv", "-out", out)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("run failed: %v\n%s", err, msg)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "kind,x,y") {
		t.Fatalf("unexpected csv header: %.80s", data)
	}
}

func TestCLIRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"-preset", "atlantis"},
		{"-dataset", "nope"},
		{"-format", "xml"},
	} {
		cmd := exec.Command(bin, args...)
		if err := cmd.Run(); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
