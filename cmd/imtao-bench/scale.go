package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/roadnet"
	"imtao/internal/workload"
)

// The -scale sweep is the acceptance benchmark of the distance-oracle
// engine (DESIGN.md §10): it runs the full Seq-BDC pipeline on a road
// network at 10k/50k/100k tasks, records per-phase latency and the oracle's
// cache behaviour, asserts the no-duplicate-search invariant
// (dijkstra_runs == unique sources), and measures the raw TravelTime
// hit/miss paths against the frozen pre-oracle LegacyNetwork.

// scaleRecord is the schema of BENCH_oracle.json.
type scaleRecord struct {
	Benchmark  string            `json:"benchmark"`
	Method     string            `json:"method"`
	Dataset    string            `json:"dataset"`
	Grid       int               `json:"grid"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Env        map[string]string `json:"env"`
	Generated  string            `json:"generated"`
	// MaxGameIterations is the phase-2 cap applied at every size; capped
	// runs are feasible but not necessarily at equilibrium.
	MaxGameIterations int           `json:"max_game_iterations"`
	Presets           []scalePreset `json:"presets"`
}

type scalePreset struct {
	Name    string `json:"name"`
	Tasks   int    `json:"tasks"`
	Workers int    `json:"workers"`
	Centers int    `json:"centers"`

	WallMs     float64 `json:"wall_ms"`
	Phase1Ms   float64 `json:"phase1_ms"`
	Phase2Ms   float64 `json:"phase2_ms"`
	Assigned   int     `json:"assigned"`
	Iterations int     `json:"iterations"`
	GameCapped bool    `json:"game_capped"`

	TravelQueries int64   `json:"travel_queries"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	HitRate       float64 `json:"hit_rate"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	DijkstraRuns  int64   `json:"dijkstra_runs"`
	UniqueSources int64   `json:"unique_sources"`
	// DedupOK is the acceptance invariant: with the cache sized to the node
	// count, every search corresponds to exactly one unique source — no
	// duplicated work across concurrent same-source misses, no refaults.
	DedupOK bool `json:"dedup_ok"`

	// HitPath/MissPath compare the oracle query paths against the frozen
	// pre-oracle implementation on this preset's entity locations.
	HitPath  scalePath `json:"hit_path"`
	MissPath scalePath `json:"miss_path"`
}

type scalePath struct {
	LegacyQPS float64 `json:"legacy_qps"`
	OracleQPS float64 `json:"oracle_qps"`
	Speedup   float64 `json:"speedup"`
}

type scaleConfig struct {
	dataset  workload.Dataset
	grid     int
	gameCap  int
	jsonPath string
}

func parseScaleSizes(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		v, err := workload.ParseScaleSize(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scale sizes given")
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if p := s[start:i]; p != "" {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	return out
}

// runScaleSweep executes the scale benchmark and writes BENCH_oracle.json.
func runScaleSweep(sizes []int, cfg scaleConfig) error {
	rec := scaleRecord{
		Benchmark:         "oracle-scale",
		Method:            "Seq-BDC",
		Dataset:           cfg.dataset.String(),
		Grid:              cfg.grid,
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Env:               obs.EnvMeta(),
		Generated:         time.Now().UTC().Format(time.RFC3339),
		MaxGameIterations: cfg.gameCap,
	}
	hits := obs.Default.Counter("imtao_roadnet_cache_hits_total", "")
	misses := obs.Default.Counter("imtao_roadnet_cache_misses_total", "")

	for _, size := range sizes {
		p := workload.ScaleParams(cfg.dataset, size)
		raw, err := workload.Generate(p)
		if err != nil {
			return err
		}
		net, err := roadnet.New(raw.Bounds, cfg.grid, cfg.grid, p.Speed)
		if err != nil {
			return err
		}
		// Size the cache to the node count: every source stays resident, so
		// the dedup invariant below is exact (no refaults).
		net.SetCacheCapacity(net.Nodes())
		raw.Metric = net
		in, _, err := core.Partition(raw)
		if err != nil {
			return err
		}

		h0, m0 := hits.Value(), misses.Value()
		t0 := time.Now()
		rep, err := core.Run(in, core.Config{
			Method:            core.Method{Assigner: core.Seq, Collab: core.BDC},
			MaxGameIterations: cfg.gameCap,
		})
		if err != nil {
			return err
		}
		wall := time.Since(t0)
		st := net.Stats()

		pr := scalePreset{
			Name:    fmt.Sprintf("%dk", size/1000),
			Tasks:   p.NumTasks,
			Workers: p.NumWorkers,
			Centers: p.NumCenters,

			WallMs:     ms(wall),
			Phase1Ms:   ms(rep.Phase1Time),
			Phase2Ms:   ms(rep.Phase2Time),
			Assigned:   rep.Assigned,
			Iterations: rep.Iterations,
			GameCapped: cfg.gameCap > 0 && rep.Iterations >= cfg.gameCap,

			CacheHits:     hits.Value() - h0,
			CacheMisses:   misses.Value() - m0,
			DijkstraRuns:  st.DijkstraRuns,
			UniqueSources: st.UniqueSources,
			DedupOK:       st.DijkstraRuns == st.UniqueSources,
		}
		if size%1000 != 0 {
			pr.Name = fmt.Sprintf("%d", size)
		}
		pr.TravelQueries = pr.CacheHits + pr.CacheMisses
		if pr.TravelQueries > 0 {
			pr.HitRate = float64(pr.CacheHits) / float64(pr.TravelQueries)
		}
		if s := wall.Seconds(); s > 0 {
			pr.QueriesPerSec = float64(pr.TravelQueries) / s
		}

		// Query-path microbenchmarks on fresh networks (the pipeline stats
		// above stay unpolluted) over this preset's entity locations.
		pts := samplePoints(in, 128)
		pr.HitPath, pr.MissPath, err = measurePaths(raw.Bounds, cfg.grid, p.Speed, pts)
		if err != nil {
			return err
		}
		rec.Presets = append(rec.Presets, pr)

		fmt.Printf("scale %s — |S|=%d |W|=%d |C|=%d grid=%d²\n",
			pr.Name, pr.Tasks, pr.Workers, pr.Centers, cfg.grid)
		fmt.Printf("  wall %.0f ms (ph1 %.0f, ph2 %.0f), assigned %d, %d game iters%s\n",
			pr.WallMs, pr.Phase1Ms, pr.Phase2Ms, pr.Assigned, pr.Iterations, capTag(pr.GameCapped))
		fmt.Printf("  %d travel queries, hit rate %.4f, %.2fM queries/s\n",
			pr.TravelQueries, pr.HitRate, pr.QueriesPerSec/1e6)
		fmt.Printf("  dijkstra runs %d, unique sources %d, dedup_ok=%v\n",
			pr.DijkstraRuns, pr.UniqueSources, pr.DedupOK)
		fmt.Printf("  hit path: oracle %.2fM q/s vs legacy %.2fM q/s (%.1fx)\n",
			pr.HitPath.OracleQPS/1e6, pr.HitPath.LegacyQPS/1e6, pr.HitPath.Speedup)
		fmt.Printf("  miss path: oracle %.0f q/s vs legacy %.0f q/s (%.1fx)\n\n",
			pr.MissPath.OracleQPS, pr.MissPath.LegacyQPS, pr.MissPath.Speedup)

		if !pr.DedupOK {
			return fmt.Errorf("scale %s: duplicated searches (runs=%d unique=%d)",
				pr.Name, pr.DijkstraRuns, pr.UniqueSources)
		}
	}

	f, err := os.Create(cfg.jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scale record written to %s\n", cfg.jsonPath)
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func capTag(capped bool) string {
	if capped {
		return " (capped)"
	}
	return ""
}

// samplePoints draws up to n entity locations round-robin from centers,
// workers and tasks, so the microbenchmark queries the distribution the
// pipeline actually queries. The count is kept small enough that the legacy
// cache (512 tables, full-wipe eviction) holds every source — the hit-path
// comparison must measure hits on both sides.
func samplePoints(in *model.Instance, n int) []geo.Point {
	var pts []geo.Point
	for i := 0; len(pts) < n; i++ {
		added := false
		if i < len(in.Centers) {
			pts = append(pts, in.Centers[i].Loc)
			added = true
		}
		if len(pts) < n && i < len(in.Workers) {
			pts = append(pts, in.Workers[i].Loc)
			added = true
		}
		if len(pts) < n && i < len(in.Tasks) {
			pts = append(pts, in.Tasks[i].Loc)
			added = true
		}
		if !added {
			break
		}
	}
	return pts
}

// measurePaths times the cache-hit and cache-miss query paths of the oracle
// against the legacy implementation on the same point pairs.
func measurePaths(bounds geo.Rect, grid int, speed float64, pts []geo.Point) (hit, miss scalePath, err error) {
	if len(pts) < 2 {
		return hit, miss, fmt.Errorf("not enough sample points")
	}
	oracle, err := roadnet.New(bounds, grid, grid, speed)
	if err != nil {
		return hit, miss, err
	}
	oracle.SetCacheCapacity(oracle.Nodes())
	legacy, err := roadnet.NewLegacy(bounds, grid, grid, speed)
	if err != nil {
		return hit, miss, err
	}

	// Pre-snap the oracle refs — the post-PR pipeline queries through
	// model.PrepareMetric's memoized snaps, so the hit path under test is
	// TravelTimeNodes. The legacy pipeline had no such path; it always paid
	// the snap plus the global mutex.
	type ref struct {
		node int32
		leg  float64
	}
	refs := make([]ref, len(pts))
	for i, p := range pts {
		refs[i].node, refs[i].leg = oracle.SnapNode(p)
	}
	// Warm both caches.
	for i := range pts {
		j := (i + 1) % len(pts)
		oracle.TravelTimeNodes(refs[i].node, refs[i].leg, refs[j].node, refs[j].leg)
		legacy.TravelTime(pts[i], pts[j])
	}

	// timeLoop repeats a full round over the sample pairs until the run is
	// long enough to time; the per-query overhead is one loop increment, so
	// the measured cost is the query path itself.
	const minDuration = 100 * time.Millisecond
	timeLoop := func(round func()) float64 {
		queries := 0
		t0 := time.Now()
		for time.Since(t0) < minDuration {
			round()
			queries += len(pts)
		}
		return float64(queries) / time.Since(t0).Seconds()
	}
	var sink float64
	hit.OracleQPS = timeLoop(func() {
		for i := 1; i < len(refs); i++ {
			a, b := refs[i-1], refs[i]
			sink += oracle.TravelTimeNodes(a.node, a.leg, b.node, b.leg)
		}
		a, b := refs[len(refs)-1], refs[0]
		sink += oracle.TravelTimeNodes(a.node, a.leg, b.node, b.leg)
	})
	hit.LegacyQPS = timeLoop(func() {
		for i := 1; i < len(pts); i++ {
			sink += legacy.TravelTime(pts[i-1], pts[i])
		}
		sink += legacy.TravelTime(pts[len(pts)-1], pts[0])
	})
	hit.Speedup = hit.OracleQPS / hit.LegacyQPS

	// Miss path: flush before every query so each one pays a full search.
	miss.OracleQPS = timeLoop(func() {
		for i := 1; i < len(pts); i++ {
			oracle.FlushCache()
			sink += oracle.TravelTime(pts[i-1], pts[i])
		}
		oracle.FlushCache()
		sink += oracle.TravelTime(pts[len(pts)-1], pts[0])
	})
	miss.LegacyQPS = timeLoop(func() {
		for i := 1; i < len(pts); i++ {
			legacy.FlushCache()
			sink += legacy.TravelTime(pts[i-1], pts[i])
		}
		legacy.FlushCache()
		sink += legacy.TravelTime(pts[len(pts)-1], pts[0])
	})
	miss.Speedup = miss.OracleQPS / miss.LegacyQPS
	_ = sink
	return hit, miss, nil
}
