package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/roadnet"
	"imtao/internal/workload"
)

// The -shard sweep is the acceptance benchmark of the region-sharded game
// engine (DESIGN.md §15): per task size it plays the phase-2 game uncapped
// to equilibrium through collab.RunSharded at each requested shard count —
// shard count 1 IS the unsharded engine, the sweep's baseline — and records
// the wall-clock, the partition/interference profile (boundary workers,
// conflict edges, exchange rounds) and the speedup over the one-shard run.
// Every point is Nash-verified, and whenever the interference cut is empty
// the route/transfer fingerprint must be bit-identical to the unsharded
// engine's; either failing is a hard error (nonzero exit).

// shardRecord is the schema of BENCH_shard.json.
type shardRecord struct {
	Benchmark  string            `json:"benchmark"`
	Method     string            `json:"method"`
	Dataset    string            `json:"dataset"`
	Grid       int               `json:"grid"`
	Seed       int64             `json:"seed"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Env        map[string]string `json:"env"`
	Generated  string            `json:"generated"`
	Presets    []shardPreset     `json:"presets"`
}

type shardPreset struct {
	// Name is "<size>-s<shards>", e.g. "100k-s4".
	Name    string `json:"name"`
	Tasks   int    `json:"tasks"`
	Workers int    `json:"workers"`
	Centers int    `json:"centers"`
	// ShardsRequested is the -shard value; Shards the effective count the
	// partitioner produced (1 when the engine fell back to the unsharded
	// game).
	ShardsRequested int `json:"shards_requested"`
	Shards          int `json:"shards"`

	Phase1Ms float64 `json:"phase1_ms"`

	// Outcome of the sharded engine, uncapped to equilibrium. The solution
	// fields are gated equal against the baseline record: the sharded
	// dynamics is deterministic at every shard count.
	Phase2Ms    float64 `json:"phase2_ms"`
	Iterations  int     `json:"iterations"`
	Transfers   int     `json:"transfers"`
	Assigned    int     `json:"assigned"`
	Unfairness  float64 `json:"unfairness"`
	Fingerprint string  `json:"fingerprint"`

	IterP50Ms float64 `json:"iter_p50_ms"`
	IterP99Ms float64 `json:"iter_p99_ms"`

	// Partition / interference profile (ShardReport).
	ExclusiveWorkers   int     `json:"exclusive_workers"`
	BoundaryWorkers    int     `json:"boundary_workers"`
	ConflictEdges      int     `json:"conflict_edges"`
	EmptyCut           bool    `json:"empty_cut"`
	Components         int     `json:"components"`
	Colors             int     `json:"colors"`
	LoadSkew           float64 `json:"load_skew"`
	ExchangeIterations int     `json:"exchange_iterations"`
	ExchangeTransfers  int     `json:"exchange_transfers"`
	ShardWallMaxMs     float64 `json:"shard_wall_max_ms"`

	// Auto is the ShardAuto decision record when this point ran with
	// "auto" in the sweep list; null for explicit counts.
	Auto *shardAutoRecord `json:"auto,omitempty"`

	// EquilibriumOK is the global Nash check on the sharded outcome;
	// IdenticalToS1 reports the fingerprint match against the one-shard run
	// (asserted whenever EmptyCut holds). Speedup is this point's phase-2
	// wall over the one-shard point's of the same size.
	EquilibriumOK bool    `json:"equilibrium_ok"`
	IdenticalToS1 bool    `json:"identical_to_s1"`
	Speedup       float64 `json:"speedup"`
}

// shardAutoRecord mirrors collab.ShardAutotune for the JSON record.
type shardAutoRecord struct {
	Parallelism int              `json:"parallelism"`
	Picked      int              `json:"picked"`
	Ladder      []shardAutoProbe `json:"ladder"`
}

type shardAutoProbe struct {
	Shards          int     `json:"shards"`
	BoundaryWorkers int     `json:"boundary_workers"`
	Components      int     `json:"components"`
	LoadSkew        float64 `json:"load_skew"`
	Cost            float64 `json:"cost"`
}

type shardConfig struct {
	dataset  workload.Dataset
	grid     int
	seed     int64
	jsonPath string
}

// parseShardCounts parses the -shard sweep list: comma-separated positive
// shard counts plus the word "auto" for the self-tuned point
// (collab.ShardAuto).
func parseShardCounts(s string) ([]int, error) {
	var counts []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "auto" {
			counts = append(counts, collab.ShardAuto)
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid shard count %q", tok)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("empty shard count list")
	}
	return counts, nil
}

// runShardSweep executes the sharded-engine benchmark and writes
// BENCH_shard.json. It returns an error when any point fails verification
// (non-equilibrium) or diverges from the one-shard engine under an empty
// interference cut.
func runShardSweep(sizes []int, counts []int, cfg shardConfig) error {
	rec := shardRecord{
		Benchmark:  "shard-engine",
		Method:     "Seq-BDC",
		Dataset:    cfg.dataset.String(),
		Grid:       cfg.grid,
		Seed:       cfg.seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        obs.EnvMeta(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}

	for _, size := range sizes {
		p := workload.ScaleParams(cfg.dataset, size)
		raw, err := workload.Generate(p)
		if err != nil {
			return err
		}
		net, err := roadnet.New(raw.Bounds, cfg.grid, cfg.grid, p.Speed)
		if err != nil {
			return err
		}
		net.SetCacheCapacity(net.Nodes())
		raw.Metric = net
		in, _, err := core.Partition(raw)
		if err != nil {
			return err
		}
		in.PrepareMetric()
		locs := make([]geo.Point, len(in.Centers))
		for i := range in.Centers {
			locs[i] = in.Centers[i].Loc
		}
		net.PrecomputeSources(locs)

		t0 := time.Now()
		p1 := make([]assign.Result, len(in.Centers))
		for ci := range in.Centers {
			c := in.Center(model.CenterID(ci))
			p1[ci] = assign.Sequential(in, c, c.Workers, c.Tasks)
		}
		phase1 := time.Since(t0)

		sizeLabel := fmt.Sprintf("%dk", size/1000)
		if size%1000 != 0 {
			sizeLabel = fmt.Sprintf("%d", size)
		} else if size%1_000_000 == 0 {
			sizeLabel = fmt.Sprintf("%dm", size/1_000_000)
		}

		ccfg := collab.Config{Scope: collab.FullReassign, Assigner: assign.Sequential}

		// Untimed warm-up run: fills the travel-time cache so every timed
		// point below — one-shard baseline included — competes on a warm
		// oracle, keeping the speedup column honest. A single-point sweep
		// (the 1M record) has no intra-sweep comparison to keep honest, so
		// it skips the warm-up rather than double its multi-minute game.
		if len(counts) > 1 {
			collab.Run(in, p1, ccfg)
		}

		var s1Fingerprint uint64
		var s1Wall time.Duration
		for _, k := range counts {
			t0 = time.Now()
			res, srep := collab.RunSharded(in, p1, collab.ShardConfig{
				Config: ccfg,
				Shards: k,
				Seed:   cfg.seed,
			})
			wall := time.Since(t0)

			fp := solutionFingerprint(res.Solution)
			if k == counts[0] {
				s1Fingerprint, s1Wall = fp, wall
			}

			var wallMax time.Duration
			for _, d := range srep.ShardWall {
				if d > wallMax {
					wallMax = d
				}
			}
			name := fmt.Sprintf("%s-s%d", sizeLabel, k)
			if k == collab.ShardAuto {
				name = sizeLabel + "-sauto"
			}
			pr := shardPreset{
				Name:    name,
				Tasks:   p.NumTasks,
				Workers: p.NumWorkers,
				Centers: p.NumCenters,

				ShardsRequested: k,
				Shards:          srep.Shards,

				Phase1Ms:    ms(phase1),
				Phase2Ms:    ms(wall),
				Iterations:  res.Iterations,
				Transfers:   len(res.Solution.Transfers),
				Assigned:    res.Solution.AssignedCount(),
				Unfairness:  metrics.SolutionUnfairness(in, res.Solution),
				Fingerprint: fmt.Sprintf("%016x", fp),

				ExclusiveWorkers:   srep.ExclusiveWorkers,
				BoundaryWorkers:    srep.BoundaryWorkers,
				ConflictEdges:      srep.ConflictEdges,
				EmptyCut:           srep.EmptyCut,
				Components:         srep.Components,
				Colors:             srep.Colors,
				LoadSkew:           srep.LoadSkew,
				ExchangeIterations: srep.ExchangeIterations,
				ExchangeTransfers:  srep.ExchangeTransfers,
				ShardWallMaxMs:     ms(wallMax),

				IdenticalToS1: fp == s1Fingerprint,
			}
			if srep.Auto != nil {
				ar := &shardAutoRecord{
					Parallelism: srep.Auto.Parallelism,
					Picked:      srep.Auto.Picked,
				}
				for _, probe := range srep.Auto.Ladder {
					ar.Ladder = append(ar.Ladder, shardAutoProbe{
						Shards:          probe.Shards,
						BoundaryWorkers: probe.BoundaryWorkers,
						Components:      probe.Components,
						LoadSkew:        probe.LoadSkew,
						Cost:            probe.Cost,
					})
				}
				pr.Auto = ar
			}
			iterQ := obs.NewQuantile()
			for _, step := range res.Trace {
				iterQ.ObserveDuration(step.Duration)
			}
			iterSnap := iterQ.Snapshot()
			pr.IterP50Ms = iterSnap.Quantile(0.50) * 1e3
			pr.IterP99Ms = iterSnap.Quantile(0.99) * 1e3
			if wall > 0 {
				pr.Speedup = s1Wall.Seconds() / wall.Seconds()
			}

			t0 = time.Now()
			pr.EquilibriumOK = res.VerifyEquilibrium(in, nil) == nil
			verify := time.Since(t0)

			rec.Presets = append(rec.Presets, pr)

			req := fmt.Sprintf("%d", pr.ShardsRequested)
			if pr.ShardsRequested == collab.ShardAuto {
				req = "auto"
				if pr.Auto != nil {
					req = fmt.Sprintf("auto→%d", pr.Auto.Picked)
				}
			}
			fmt.Printf("shard %s — |S|=%d |W|=%d |C|=%d grid=%d² (uncapped)\n",
				pr.Name, pr.Tasks, pr.Workers, pr.Centers, cfg.grid)
			fmt.Printf("  shards %d (requested %s): exclusive %d, boundary %d, conflict edges %d, empty_cut=%v, components %d, colors %d, load skew %.2f\n",
				pr.Shards, req, pr.ExclusiveWorkers, pr.BoundaryWorkers,
				pr.ConflictEdges, pr.EmptyCut, pr.Components, pr.Colors, pr.LoadSkew)
			fmt.Printf("  ph2 %.0f ms (slowest shard %.0f ms), %d iters (%d transfers, %d exchange iters), assigned %d, U_ρ %.4f\n",
				pr.Phase2Ms, pr.ShardWallMaxMs, pr.Iterations, pr.Transfers,
				pr.ExchangeIterations, pr.Assigned, pr.Unfairness)
			fmt.Printf("  iter latency ms: p50 %.3f p99 %.3f\n", pr.IterP50Ms, pr.IterP99Ms)
			fmt.Printf("  equilibrium_ok=%v (verified in %.0f ms), identical_to_s1=%v, speedup %.2fx\n\n",
				pr.EquilibriumOK, ms(verify), pr.IdenticalToS1, pr.Speedup)

			if !pr.EquilibriumOK {
				return fmt.Errorf("shard %s: final state is not a Nash equilibrium", pr.Name)
			}
			if pr.EmptyCut && !pr.IdenticalToS1 {
				return fmt.Errorf("shard %s: empty interference cut but output diverged from "+
					"the one-shard engine (fingerprint %s vs %016x)", pr.Name, pr.Fingerprint, s1Fingerprint)
			}
		}
	}

	f, err := os.Create(cfg.jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard record written to %s\n", cfg.jsonPath)
	return nil
}
