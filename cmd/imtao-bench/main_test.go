package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"imtao/internal/core"
)

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	if _, err := parseSeeds(""); err == nil {
		t.Error("empty seeds must fail")
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Error("bad seed must fail")
	}
}

func TestParseMethods(t *testing.T) {
	got, err := parseMethods("seq")
	if err != nil || len(got) != 4 {
		t.Fatalf("seq: %v, %v", got, err)
	}
	got, err = parseMethods("all")
	if err != nil || len(got) != 8 {
		t.Fatalf("all: %v, %v", got, err)
	}
	got, err = parseMethods("Seq-BDC, Opt-w/o-C")
	if err != nil || len(got) != 2 {
		t.Fatalf("list: %v, %v", got, err)
	}
	if got[0] != (core.Method{Assigner: core.Seq, Collab: core.BDC}) {
		t.Errorf("first method = %v", got[0])
	}
	if _, err := parseMethods("Seq-XYZ"); err == nil {
		t.Error("bad method must fail")
	}
}

func TestIsAblation(t *testing.T) {
	if !isAblation("worker-order") || isAblation("fig3") {
		t.Error("isAblation misclassifies")
	}
}

func TestBenchCLITable1(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "imtao-bench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-experiment", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table I") {
		t.Errorf("missing Table I:\n%s", out)
	}
	// No experiment selected: usage with the known ids on stderr, exit 2.
	err = exec.Command(bin).Run()
	if err == nil {
		t.Error("bare invocation must exit non-zero")
	}
}
