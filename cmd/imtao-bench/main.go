// Command imtao-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	imtao-bench -experiment fig3              # one figure, Seq methods
//	imtao-bench -experiment fig7 -methods all # include the Opt methods
//	imtao-bench -experiment fig11             # convergence trace (Fig. 11)
//	imtao-bench -experiment fig11 -trace trace.jsonl -metrics-out metrics.prom
//	imtao-bench -experiment table1            # print Table I
//	imtao-bench -all                          # every figure, Seq methods
//	imtao-bench -all -seeds 1,2,3,4,5         # more seeds per point
//
// Output is a per-figure table (assigned tasks, unfairness, CPU time, one
// row per method, one column per swept value) followed by ASCII plots of
// the same series.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"imtao/internal/core"
	"imtao/internal/experiments"
	"imtao/internal/obs"
	"imtao/internal/workload"
)

func main() {
	var (
		expID    = flag.String("experiment", "", "experiment id: table1, fig3..fig11, or an ablation id (empty with -all runs everything)")
		all      = flag.Bool("all", false, "run every experiment")
		methods  = flag.String("methods", "seq", `method set: "seq", "all", or a comma list like "Seq-BDC,Opt-w/o-C"`)
		seeds    = flag.String("seeds", "1,2,3", "comma-separated dataset seeds to average over")
		budget   = flag.Duration("opt-budget", 200*time.Millisecond, "per-center time budget for the Opt assigner")
		plots    = flag.Bool("plots", true, "render ASCII plots after each table")
		verbose  = flag.Bool("v", false, "print one progress line per run")
		convSeed = flag.Int64("conv-seed", 1, "seed for the fig11 convergence run")
		csvDir   = flag.String("csv", "", "also write results as CSV files into this directory")
		report   = flag.String("report", "", "run a fresh reproduction pass and write a markdown report to this file")
		parallel = flag.Int("parallel", 1, "concurrent sweep cells per experiment")

		parallelism  = flag.String("parallelism", "", `engine-parallelism sweep, e.g. "1,2,4,8": time Seq-BDC at Table I defaults per value and write a JSON timing record`)
		parallelOut  = flag.String("parallelism-json", "BENCH_parallel.json", "output path of the -parallelism timing record")
		parallelReps = flag.Int("parallelism-reps", 3, "runs per -parallelism point (best wall-clock is recorded)")

		scale        = flag.String("scale", "", `distance-oracle scale sweep, e.g. "10k,50k,100k": run Seq-BDC on a road network per task count and write a JSON record`)
		scaleOut     = flag.String("scale-json", "BENCH_oracle.json", "output path of the -scale record")
		scaleDataset = flag.String("scale-dataset", "syn", "dataset generator for -scale: gm or syn")
		scaleGrid    = flag.Int("scale-grid", 64, "road-network grid side for -scale (grid² nodes)")
		scaleGame    = flag.Int("scale-game-iters", 20, "phase-2 game iteration cap for -scale (0 = uncapped)")

		shard        = flag.String("shard", "", `sharded game-engine sweep over shard counts, e.g. "1,2,4,8,auto": per -shard-scale size, run the collaboration game uncapped to equilibrium through the region-sharded engine at each count (1 = the unsharded baseline, "auto" = the self-tuned ShardAuto point), verify the global Nash equilibrium, and write a JSON record`)
		shardScale   = flag.String("shard-scale", "10k,100k", "comma-separated task sizes for -shard")
		shardOut     = flag.String("shard-json", "BENCH_shard.json", "output path of the -shard record")
		shardDataset = flag.String("shard-dataset", "syn", "dataset generator for -shard: gm or syn")
		shardGrid    = flag.Int("shard-grid", 64, "road-network grid side for -shard (grid² nodes)")
		shardSeed    = flag.Int64("shard-seed", 1, "k-means shard-partition seed for -shard")

		game        = flag.String("game", "", `phase-2 game-engine sweep, e.g. "10k,50k,100k": run the collaboration game uncapped to equilibrium per task count, cross-check the optimized engine against the frozen reference, and write a JSON record`)
		gameOut     = flag.String("game-json", "BENCH_game.json", "output path of the -game record")
		gameDataset = flag.String("game-dataset", "syn", "dataset generator for -game: gm or syn")
		gameGrid    = flag.Int("game-grid", 64, "road-network grid side for -game (grid² nodes)")
		gameTrace   = flag.String("game-trace", "", "record a Chrome/Perfetto span timeline of the optimized engine runs (iterations, trials, Dijkstra searches) to this file; adds per-trial overhead, so leave off for baselines")

		tracePath     = flag.String("trace", "", "stream run telemetry (game_iter events with phi and the rho vector) to this JSONL file; honored by fig11")
		metricsOut    = flag.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file on exit")
		runtimeSample = flag.Duration("runtime-sample", 0, "runtime-vitals sampling period (GC pauses, heap, goroutines); 0 enables the default period when -metrics-out is set, negative disables")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit; pair with -cpuprofile when hunting allocation sites (docs/MEMPROFILE.md)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "allocation profile written to %s\n", *memProfile)
		}()
	}

	var benchObs obs.Observer = obs.Nop
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		j := obs.NewJSONL(f)
		benchObs = j
		defer func() {
			if err := j.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "imtao-bench: trace:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "telemetry trace written to %s\n", *tracePath)
		}()
	}
	if *metricsOut != "" {
		defer writeMetricsSnapshot(*metricsOut)
	}
	// Runtime vitals: on by default whenever a metrics snapshot is requested,
	// so the exported exposition carries imtao_runtime_* gauges alongside the
	// workload counters. Stop runs before writeMetricsSnapshot (LIFO defers),
	// with one final Sample so the snapshot reflects end-of-run state.
	if *runtimeSample > 0 || (*runtimeSample == 0 && *metricsOut != "") {
		period := *runtimeSample
		if period == 0 {
			period = obs.DefaultSampleInterval
		}
		sampler := obs.NewRuntimeSampler(period, obs.Default, benchObs)
		sampler.Start()
		defer func() {
			sampler.Stop()
			sampler.Sample()
		}()
	}

	if *parallelism != "" {
		levels, err := parseParallelism(*parallelism)
		if err != nil {
			fatal(err)
		}
		if err := runParallelSweep(levels, *parallelReps, *parallelOut); err != nil {
			fatal(err)
		}
		return
	}

	if *scale != "" {
		sizes, err := parseScaleSizes(*scale)
		if err != nil {
			fatal(err)
		}
		d, err := workload.ParseDataset(*scaleDataset)
		if err != nil {
			fatal(err)
		}
		if err := runScaleSweep(sizes, scaleConfig{
			dataset:  d,
			grid:     *scaleGrid,
			gameCap:  *scaleGame,
			jsonPath: *scaleOut,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *shard != "" {
		counts, err := parseShardCounts(*shard)
		if err != nil {
			fatal(err)
		}
		sizes, err := parseScaleSizes(*shardScale)
		if err != nil {
			fatal(err)
		}
		d, err := workload.ParseDataset(*shardDataset)
		if err != nil {
			fatal(err)
		}
		if err := runShardSweep(sizes, counts, shardConfig{
			dataset:  d,
			grid:     *shardGrid,
			seed:     *shardSeed,
			jsonPath: *shardOut,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *game != "" {
		sizes, err := parseScaleSizes(*game)
		if err != nil {
			fatal(err)
		}
		d, err := workload.ParseDataset(*gameDataset)
		if err != nil {
			fatal(err)
		}
		if err := runGameSweep(sizes, gameConfig{
			dataset:   d,
			grid:      *gameGrid,
			jsonPath:  *gameOut,
			tracePath: *gameTrace,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *report != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opt := experiments.ReportOptions{
			Seeds:              seedList,
			IncludeConvergence: true,
			IncludeHeadroom:    true,
		}
		if *verbose {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
		}
		if err := experiments.WriteReport(f, opt); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *report)
		return
	}

	if !*all && *expID == "" {
		fmt.Fprintln(os.Stderr, "imtao-bench: pass -experiment <id> or -all; known ids:")
		fmt.Fprintln(os.Stderr, "  table1, fig11, defaults, dynamic, headroom, capacity,")
		for _, e := range experiments.Registry() {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", e.ID+",", e.Title)
		}
		fmt.Fprintf(os.Stderr, "  ablations: %v\n", experiments.Ablations())
		os.Exit(2)
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fatal(err)
	}
	methodList, err := parseMethods(*methods)
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{Seeds: seedList, Methods: methodList, OptBudget: *budget, Parallel: *parallel}
	if *verbose {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	ids := []string{*expID}
	if *all {
		ids = []string{"table1"}
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
		ids = append(ids, "fig11", "defaults", "dynamic", "headroom", "capacity")
		ids = append(ids, experiments.Ablations()...)
	}

	for _, id := range ids {
		switch id {
		case "table1":
			fmt.Println(experiments.TableI())
		case "capacity":
			for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
				res, err := experiments.RunCapacitySweep(d, seedList)
				if err != nil {
					fatal(err)
				}
				fmt.Println(res.Table())
			}
		case "headroom":
			for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
				res, err := experiments.RunHeadroom(d, seedList, 0)
				if err != nil {
					fatal(err)
				}
				fmt.Println(res.Table())
			}
		case "dynamic":
			for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
				res, err := experiments.RunDynamicSweep(d, seedList)
				if err != nil {
					fatal(err)
				}
				fmt.Println(res.Table())
			}
		case "defaults":
			for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
				res, err := experiments.RunDefaults(d, methodList, seedList, *budget)
				if err != nil {
					fatal(err)
				}
				fmt.Println(res.Table())
			}
		case "fig11":
			for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
				benchObs.Event("bench_dataset",
					obs.F("experiment", "fig11"),
					obs.F("dataset", d.String()),
					obs.F("seed", *convSeed))
				res, err := experiments.ConvergenceObserved(d, *convSeed, benchObs)
				if err != nil {
					fatal(err)
				}
				fmt.Println(res.Render())
				if *csvDir != "" {
					writeCSVFile(*csvDir, fmt.Sprintf("fig11_%s.csv", d), res.WriteCSV)
				}
			}
		default:
			if isAblation(id) {
				for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
					res, err := experiments.RunAblation(id, d, seedList)
					if err != nil {
						fatal(err)
					}
					fmt.Println(res.Table())
					if *csvDir != "" {
						writeCSVFile(*csvDir, fmt.Sprintf("%s_%s.csv", id, d), res.WriteCSV)
					}
				}
				continue
			}
			e, ok := experiments.Lookup(id)
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q", id))
			}
			res, err := experiments.Run(e, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Table())
			if *csvDir != "" {
				writeCSVFile(*csvDir, id+".csv", res.WriteCSV)
			}
			if *plots {
				fmt.Println(res.Plots())
			}
			if seqMean, optMean, haveOpt := res.CPUSplit(); haveOpt {
				fmt.Printf("CPU split: Seq methods mean %.4fs, Opt methods mean %.4fs (%.0fx)\n\n",
					seqMean, optMean, optMean/seqMean)
			}
		}
	}
}

// writeCSVFile writes one result CSV into dir, creating it if needed.
func writeCSVFile(dir, name string, write func(io.Writer) error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
}

func isAblation(id string) bool {
	for _, a := range experiments.Ablations() {
		if a == id {
			return true
		}
	}
	return false
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return out, nil
}

func parseMethods(s string) ([]core.Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "seq", "":
		return experiments.SeqMethods(), nil
	case "all":
		return experiments.AllMethods(), nil
	}
	var out []core.Method
	for _, part := range strings.Split(s, ",") {
		m, err := core.ParseMethod(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// writeMetricsSnapshot dumps the process-wide metrics registry (with env
// info) to path in Prometheus text format.
func writeMetricsSnapshot(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	obs.RecordEnvInfo(obs.Default)
	if _, err := obs.Default.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imtao-bench:", err)
	os.Exit(1)
}
