package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"imtao/internal/core"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/workload"
)

// parallelSweepRecord is the schema of BENCH_parallel.json: one timing
// record per (dataset, parallelism) point, so future PRs have a perf
// trajectory to diff against. GoVersion and GOMAXPROCS predate the Env
// block and are kept so older records stay diffable.
type parallelSweepRecord struct {
	Benchmark  string               `json:"benchmark"`
	Method     string               `json:"method"`
	GoVersion  string               `json:"go_version"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Env        map[string]string    `json:"env"`
	Generated  string               `json:"generated"`
	Datasets   []parallelSweepTable `json:"datasets"`
}

type parallelSweepTable struct {
	Dataset string              `json:"dataset"`
	Tasks   int                 `json:"tasks"`
	Workers int                 `json:"workers"`
	Centers int                 `json:"centers"`
	Points  []parallelSweepStat `json:"points"`
}

type parallelSweepStat struct {
	Parallelism int     `json:"parallelism"`
	Runs        int     `json:"runs"`
	BestMs      float64 `json:"best_ms"`
	MeanMs      float64 `json:"mean_ms"`
	Phase1Ms    float64 `json:"phase1_ms"`
	Phase2Ms    float64 `json:"phase2_ms"`
	Assigned    int     `json:"assigned"`
	// Speedup is best serial wall-clock over this point's best wall-clock.
	Speedup float64 `json:"speedup"`
}

func parseParallelism(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad parallelism %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no parallelism values given")
	}
	return out, nil
}

// runParallelSweep times the proposed Seq-BDC across engine parallelism
// values at Table I defaults on both datasets, prints the table, and writes
// the JSON record.
func runParallelSweep(levels []int, reps int, jsonPath string) error {
	if reps < 1 {
		reps = 1
	}
	rec := parallelSweepRecord{
		Benchmark:  "parallelism-sweep",
		Method:     "Seq-BDC",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        obs.EnvMeta(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	method := core.Method{Assigner: core.Seq, Collab: core.BDC}
	for _, d := range []workload.Dataset{workload.SYN, workload.GM} {
		p := workload.Defaults(d)
		raw, err := workload.Generate(p)
		if err != nil {
			return err
		}
		in, _, err := core.Partition(raw)
		if err != nil {
			return err
		}
		table := parallelSweepTable{
			Dataset: d.String(),
			Tasks:   p.NumTasks, Workers: p.NumWorkers, Centers: p.NumCenters,
		}
		var serialBest float64
		var reference *core.Report
		for _, lvl := range levels {
			stat, rep, err := timeParallelPoint(in, method, lvl, reps)
			if err != nil {
				return err
			}
			if lvl == 1 || serialBest == 0 {
				serialBest = stat.BestMs
			}
			stat.Speedup = serialBest / stat.BestMs
			if reference == nil {
				reference = rep
			} else if err := crossCheck(reference, rep); err != nil {
				return fmt.Errorf("determinism violation on %s at P=%d: %w", d, lvl, err)
			}
			table.Points = append(table.Points, stat)
		}
		rec.Datasets = append(rec.Datasets, table)

		fmt.Printf("parallelism sweep — %s (|S|=%d |W|=%d |C|=%d), %s, best of %d:\n",
			d, p.NumTasks, p.NumWorkers, p.NumCenters, method, reps)
		fmt.Printf("  %-12s %10s %10s %10s %10s %8s\n", "parallelism", "wall ms", "mean ms", "ph1 ms", "ph2 ms", "speedup")
		for _, s := range table.Points {
			fmt.Printf("  %-12d %10.2f %10.2f %10.2f %10.2f %7.2fx\n",
				s.Parallelism, s.BestMs, s.MeanMs, s.Phase1Ms, s.Phase2Ms, s.Speedup)
		}
		fmt.Println()
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timing record written to %s\n", jsonPath)
	return nil
}

// crossCheck compares a sweep point's report against the serial reference
// across every determinism-contract dimension — scalar outcomes plus a
// fingerprint of the full route structure, so a scheduling leak that
// reshuffles routes without moving the totals still trips the sweep.
func crossCheck(ref, got *core.Report) error {
	if got.Assigned != ref.Assigned {
		return fmt.Errorf("assigned %d, reference %d", got.Assigned, ref.Assigned)
	}
	if got.Transfers != ref.Transfers {
		return fmt.Errorf("transfers %d, reference %d", got.Transfers, ref.Transfers)
	}
	if got.Unfairness != ref.Unfairness {
		return fmt.Errorf("unfairness %v, reference %v", got.Unfairness, ref.Unfairness)
	}
	if got.Iterations != ref.Iterations {
		return fmt.Errorf("iterations %d, reference %d", got.Iterations, ref.Iterations)
	}
	if g, r := solutionFingerprint(got.Solution), solutionFingerprint(ref.Solution); g != r {
		return fmt.Errorf("route fingerprint %016x, reference %016x", g, r)
	}
	return nil
}

// solutionFingerprint is the canonical route/transfer fingerprint shared
// with the provenance ledger — one definition, so bench cross-checks and
// ledger replay proofs pin the identical value.
func solutionFingerprint(s *model.Solution) uint64 {
	return provenance.SolutionFingerprint(s)
}

// timeParallelPoint runs one (instance, parallelism) cell reps times and
// keeps the best wall-clock (and its phase split) plus the mean.
func timeParallelPoint(in *model.Instance, m core.Method, lvl, reps int) (parallelSweepStat, *core.Report, error) {
	stat := parallelSweepStat{Parallelism: lvl, Runs: reps}
	var rep *core.Report
	var sum float64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		out, err := core.Run(in, core.Config{Method: m, Parallelism: lvl})
		if err != nil {
			return stat, nil, err
		}
		wall := float64(time.Since(t0).Microseconds()) / 1000
		sum += wall
		if rep == nil || wall < stat.BestMs {
			stat.BestMs = wall
			stat.Phase1Ms = float64(out.Phase1Time.Microseconds()) / 1000
			stat.Phase2Ms = float64(out.Phase2Time.Microseconds()) / 1000
		}
		rep = out
		stat.Assigned = out.Assigned
	}
	stat.MeanMs = sum / float64(reps)
	return stat, rep, nil
}
