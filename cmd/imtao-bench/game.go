package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/roadnet"
	"imtao/internal/stats"
	"imtao/internal/workload"
)

// The -game sweep is the acceptance benchmark of the phase-2 game engine
// (DESIGN.md §11): it runs the collaboration game UNCAPPED to equilibrium at
// 10k/50k/100k tasks on a road network, once with the optimized engine
// (admissibility pruning + prefix-resume trials + incremental bookkeeping)
// and once with the frozen pre-engine loop (collab.RunReference), asserts the
// outputs are identical (route fingerprint, assigned count, U_ρ, iteration
// count), verifies the final state is a Nash equilibrium, and records the
// speedup plus the engine's per-iteration latency percentiles and prune /
// resume rates. The optimized engine runs FIRST, so the frozen loop inherits
// a warm travel-time cache — the reported speedup is a lower bound.

// gameRecord is the schema of BENCH_game.json.
type gameRecord struct {
	Benchmark  string            `json:"benchmark"`
	Method     string            `json:"method"`
	Dataset    string            `json:"dataset"`
	Grid       int               `json:"grid"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Env        map[string]string `json:"env"`
	Generated  string            `json:"generated"`
	Presets    []gamePreset      `json:"presets"`
}

type gamePreset struct {
	Name    string `json:"name"`
	Tasks   int    `json:"tasks"`
	Workers int    `json:"workers"`
	Centers int    `json:"centers"`

	Phase1Ms float64 `json:"phase1_ms"`

	// Optimized engine (collab.Run), uncapped to equilibrium.
	Phase2Ms    float64 `json:"phase2_ms"`
	Iterations  int     `json:"iterations"`
	Transfers   int     `json:"transfers"`
	Assigned    int     `json:"assigned"`
	Unfairness  float64 `json:"unfairness"`
	Fingerprint string  `json:"fingerprint"`

	// Iteration latency, read from an obs.Quantile recorder fed with every
	// step of the trace — the same recorder kind /metrics scrapes, so bench
	// and live numbers share one definition (bounded-relative-error log
	// buckets; max is exact).
	IterP50Ms  float64 `json:"iter_p50_ms"`
	IterP90Ms  float64 `json:"iter_p90_ms"`
	IterP99Ms  float64 `json:"iter_p99_ms"`
	IterP999Ms float64 `json:"iter_p999_ms"`
	IterMaxMs  float64 `json:"iter_max_ms"`

	// Runtime health over the timed engine run: GC stop-the-world pause
	// quantiles from the delta of the runtime's cumulative pause histogram,
	// GC cycle count, and the cost of the vitals sampler that ran
	// concurrently at 100ms — the perf gate holds the sampler's own p99
	// tight so the watchdog can never silently become the workload.
	GCPauseP50Ms       float64 `json:"gc_pause_p50_ms"`
	GCPauseP99Ms       float64 `json:"gc_pause_p99_ms"`
	GCCycles           int64   `json:"gc_cycles"`
	SamplerSamples     int64   `json:"sampler_samples"`
	SamplerSampleP99Ms float64 `json:"sampler_sample_p99_ms"`

	// Engine work profile, summed over the trace. PruneRate is the fraction
	// of candidate lookups eliminated before evaluation; ResumeRate the
	// fraction of evaluated trials served by prefix-resume (1.0 for the
	// Sequential engine).
	CandidatesPruned int64   `json:"candidates_pruned"`
	TrialsEvaluated  int64   `json:"trials_evaluated"`
	TrialsResumed    int64   `json:"trials_resumed"`
	MemoHits         int64   `json:"memo_hits"`
	PruneRate        float64 `json:"prune_rate"`
	ResumeRate       float64 `json:"resume_rate"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`

	// Steady-state memory profile, sampled from a separate stepwise run of
	// the same game (collab.NewGame/Step) after a warm-up prefix:
	// AllocsPerIter is the MEDIAN heap allocations per game iteration over
	// the sampled window (0 in the zero-allocation steady state — the
	// occasional high-water growth of a recycled buffer shows up in the
	// mean, not the median), BytesPerIter the mean allocated bytes per
	// iteration, HeapInuseBytes the live heap at the end of the window.
	AllocsPerIter     float64 `json:"allocs_per_iter"`
	AllocsPerIterMean float64 `json:"allocs_per_iter_mean"`
	BytesPerIter      float64 `json:"bytes_per_iter"`
	HeapInuseBytes    int64   `json:"heap_inuse_bytes"`
	MemWindowIters    int     `json:"mem_window_iters"`

	// EquilibriumOK is the Nash check on the optimized engine's outcome.
	EquilibriumOK bool `json:"equilibrium_ok"`

	// Provenance-enabled leg: the same uncapped game re-run with a decision
	// ledger attached (caches warm, so the comparison isolates the recording
	// cost). ProvOverheadPct is the wall-clock overhead vs the bare engine in
	// percent (perfgate holds it loosely ≤ the acceptance bound);
	// ProvReplayOK asserts the ledger replays to the engine's exact
	// fingerprint, ProvCertOK that the equilibrium certificate re-validates.
	ProvPhase2Ms     float64 `json:"prov_phase2_ms"`
	ProvOverheadPct  float64 `json:"prov_overhead_pct"`
	ProvIterRecords  int     `json:"prov_iter_records"`
	ProvTrialRecords int     `json:"prov_trial_records"`
	ProvReplayOK     bool    `json:"prov_replay_ok"`
	ProvCertOK       bool    `json:"prov_cert_ok"`

	// Frozen reference engine (collab.RunReference) on the same phase-1
	// state, and the cross-engine acceptance checks.
	RefPhase2Ms     float64 `json:"ref_phase2_ms"`
	RefIterMeanMs   float64 `json:"ref_iter_mean_ms"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
}

type gameConfig struct {
	dataset  workload.Dataset
	grid     int
	jsonPath string
	// tracePath, when set, records the optimized engine's game iterations,
	// trials, and Dijkstra searches of every preset into one Chrome/Perfetto
	// span timeline. Tracing costs a little per trial, so the recorded
	// wall-clock numbers carry that overhead — leave it off for baselines.
	tracePath string
}

// runGameSweep executes the game-engine benchmark and writes BENCH_game.json.
// It returns an error (→ nonzero exit) when any acceptance check fails:
// engine/reference divergence, non-equilibrium, or an optimization that never
// engaged (zero pruned candidates or resumed trials).
func runGameSweep(sizes []int, cfg gameConfig) error {
	rec := gameRecord{
		Benchmark:  "game-engine",
		Method:     "Seq-BDC",
		Dataset:    cfg.dataset.String(),
		Grid:       cfg.grid,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        obs.EnvMeta(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	snapshotGauge := obs.Default.Gauge("imtao_collab_snapshot_bytes", "")

	var tr *obs.Tracer
	if cfg.tracePath != "" {
		tr = obs.NewTracer(0)
	}

	for _, size := range sizes {
		p := workload.ScaleParams(cfg.dataset, size)
		raw, err := workload.Generate(p)
		if err != nil {
			return err
		}
		net, err := roadnet.New(raw.Bounds, cfg.grid, cfg.grid, p.Speed)
		if err != nil {
			return err
		}
		net.SetCacheCapacity(net.Nodes())
		raw.Metric = net
		in, _, err := core.Partition(raw)
		if err != nil {
			return err
		}
		in.PrepareMetric()
		locs := make([]geo.Point, len(in.Centers))
		for i := range in.Centers {
			locs[i] = in.Centers[i].Loc
		}
		net.PrecomputeSources(locs)

		t0 := time.Now()
		p1 := make([]assign.Result, len(in.Centers))
		for ci := range in.Centers {
			c := in.Center(model.CenterID(ci))
			p1[ci] = assign.Sequential(in, c, c.Workers, c.Tasks)
		}
		phase1 := time.Since(t0)

		ccfg := collab.Config{Scope: collab.FullReassign, Assigner: assign.Sequential}

		label := fmt.Sprintf("%dk", size/1000)
		if size%1000 != 0 {
			label = fmt.Sprintf("%d", size)
		}

		var rootTS obs.TraceSpan
		if tr != nil {
			rootTS = tr.Start(0, "game_"+label,
				obs.F("tasks", p.NumTasks), obs.F("workers", p.NumWorkers),
				obs.F("centers", p.NumCenters))
			ccfg.Tracer = tr
			ccfg.TraceParent = rootTS.ID()
			net.SetTrace(tr, rootTS.ID())
		}

		// Runtime health instrumentation around the timed run: the vitals
		// sampler runs concurrently (its cost is part of what this bench
		// measures and gates), and the GC pause distribution of exactly this
		// window comes from differencing the runtime's cumulative histogram.
		pauseBefore, _ := obs.ReadRuntimeHistogram(gcPauseMetric)
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		sampler := obs.NewRuntimeSampler(100*time.Millisecond, obs.NewRegistry(), nil)
		sampler.Start()

		t0 = time.Now()
		res := collab.Run(in, p1, ccfg)
		engineWall := time.Since(t0)

		sampler.Stop()
		pauseAfter, _ := obs.ReadRuntimeHistogram(gcPauseMetric)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)

		if tr != nil {
			rootTS.End(obs.F("iterations", res.Iterations),
				obs.F("transfers", len(res.Solution.Transfers)))
			net.SetTrace(nil, 0)
			ccfg.Tracer, ccfg.TraceParent = nil, 0
		}

		pr := gamePreset{
			Name:    label,
			Tasks:   p.NumTasks,
			Workers: p.NumWorkers,
			Centers: p.NumCenters,

			Phase1Ms:    ms(phase1),
			Phase2Ms:    ms(engineWall),
			Iterations:  res.Iterations,
			Transfers:   len(res.Solution.Transfers),
			Assigned:    res.Solution.AssignedCount(),
			Unfairness:  metrics.SolutionUnfairness(in, res.Solution),
			Fingerprint: fmt.Sprintf("%016x", solutionFingerprint(res.Solution)),

			SnapshotBytes: int64(snapshotGauge.Value()),
		}
		iterQ := obs.NewQuantile()
		for _, step := range res.Trace {
			pr.CandidatesPruned += int64(step.Pruned)
			pr.TrialsEvaluated += int64(step.Trials)
			pr.TrialsResumed += int64(step.Resumed)
			pr.MemoHits += int64(step.MemoHits)
			iterQ.ObserveDuration(step.Duration)
		}
		lookups := pr.CandidatesPruned + pr.TrialsEvaluated + pr.MemoHits
		if lookups > 0 {
			pr.PruneRate = float64(pr.CandidatesPruned) / float64(lookups)
		}
		if pr.TrialsEvaluated > 0 {
			pr.ResumeRate = float64(pr.TrialsResumed) / float64(pr.TrialsEvaluated)
		}
		iterSnap := iterQ.Snapshot()
		pr.IterP50Ms = iterSnap.Quantile(0.50) * 1e3
		pr.IterP90Ms = iterSnap.Quantile(0.90) * 1e3
		pr.IterP99Ms = iterSnap.Quantile(0.99) * 1e3
		pr.IterP999Ms = iterSnap.Quantile(0.999) * 1e3
		if iterSnap.Count > 0 {
			pr.IterMaxMs = iterSnap.Max * 1e3
		}

		pauseWindow := pauseAfter.Sub(pauseBefore)
		pr.GCPauseP50Ms = pauseWindow.Quantile(0.50) * 1e3
		pr.GCPauseP99Ms = pauseWindow.Quantile(0.99) * 1e3
		pr.GCCycles = int64(memAfter.NumGC - memBefore.NumGC)
		pr.SamplerSamples = sampler.Samples()
		pr.SamplerSampleP99Ms = sampler.SampleCost().Quantile(0.99) * 1e3

		pr.AllocsPerIter, pr.AllocsPerIterMean, pr.BytesPerIter,
			pr.HeapInuseBytes, pr.MemWindowIters = meterGameMemory(in, p1, ccfg, res.Iterations)

		t0 = time.Now()
		pr.EquilibriumOK = res.VerifyEquilibrium(in, nil) == nil
		verify := time.Since(t0)

		// Provenance leg: identical game, ledger attached. Runs after the
		// timed engine so the travel caches are warm on both sides. The
		// overhead compares minima of alternating warm plain / ledgered
		// runs rather than a single pair: co-tenant contention on a
		// shared box only ever inflates a wall time, so min-of-N is the
		// robust estimator of the ledger's true cost (single-pair
		// measurements at 100k swing ±25% run to run).
		rhos := make([]float64, len(in.Centers))
		for ci := range p1 {
			rhos[ci] = metrics.Ratio(p1[ci].AssignedCount(), len(in.Centers[ci].Tasks))
		}
		var led *provenance.Ledger
		var pres collab.Result
		plainBase, provWall := time.Duration(0), time.Duration(0)
		for rep := 0; rep < 2; rep++ {
			t0 = time.Now()
			collab.Run(in, p1, ccfg)
			if w := time.Since(t0); rep == 0 || w < plainBase {
				plainBase = w
			}

			l := provenance.NewLedger()
			l.Start(provenance.Meta{Method: "Seq-BDC", Engine: "game",
				Scope: provenance.ScopeFull, Centers: len(in.Centers),
				Workers: len(in.Workers), Tasks: len(in.Tasks)})
			l.RecordPhase1(in, p1, rhos)
			pcfg := ccfg
			pcfg.Prov = l.NewGameLog(provenance.StageGame, -1)
			t0 = time.Now()
			r := collab.Run(in, p1, pcfg)
			if w := time.Since(t0); rep == 0 || w < provWall {
				provWall = w
			}
			led, pres = l, r
		}
		led.RecordFinal(in, pres.Solution, metrics.SolutionUnfairness(in, pres.Solution))
		pr.ProvPhase2Ms = ms(provWall)
		if plainBase > 0 {
			pr.ProvOverheadPct = (provWall.Seconds() - plainBase.Seconds()) / plainBase.Seconds() * 100
		}
		pr.ProvIterRecords = led.IterCount()
		pr.ProvTrialRecords = led.TrialCount()
		if rr, err := provenance.Replay(led); err == nil {
			pr.ProvReplayOK = provenance.SolutionFingerprint(rr.Solution) ==
				solutionFingerprint(res.Solution)
		}
		cert := provenance.BuildCertificate(in, pres.Solution, provenance.ScopeFull)
		pr.ProvCertOK = cert.Equilibrium && cert.Verify(in, pres.Solution) == nil

		t0 = time.Now()
		ref := collab.RunReference(in, p1, ccfg)
		refWall := time.Since(t0)
		pr.RefPhase2Ms = ms(refWall)
		if ref.Iterations > 0 {
			pr.RefIterMeanMs = pr.RefPhase2Ms / float64(ref.Iterations)
		}
		if engineWall > 0 {
			pr.Speedup = refWall.Seconds() / engineWall.Seconds()
		}
		pr.OutputIdentical = solutionFingerprint(res.Solution) == solutionFingerprint(ref.Solution) &&
			res.Solution.AssignedCount() == ref.Solution.AssignedCount() &&
			pr.Unfairness == metrics.SolutionUnfairness(in, ref.Solution) &&
			res.Iterations == ref.Iterations

		rec.Presets = append(rec.Presets, pr)

		fmt.Printf("game %s — |S|=%d |W|=%d |C|=%d grid=%d² (uncapped)\n",
			pr.Name, pr.Tasks, pr.Workers, pr.Centers, cfg.grid)
		fmt.Printf("  engine: ph2 %.0f ms, %d iters (%d transfers), assigned %d, U_ρ %.4f\n",
			pr.Phase2Ms, pr.Iterations, pr.Transfers, pr.Assigned, pr.Unfairness)
		fmt.Printf("  iter latency ms: p50 %.3f p90 %.3f p99 %.3f p999 %.3f max %.3f\n",
			pr.IterP50Ms, pr.IterP90Ms, pr.IterP99Ms, pr.IterP999Ms, pr.IterMaxMs)
		fmt.Printf("  runtime: GC pause ms p50 %.3f p99 %.3f over %d cycles; "+
			"sampler %d samples, p99 cost %.3f ms\n",
			pr.GCPauseP50Ms, pr.GCPauseP99Ms, pr.GCCycles,
			pr.SamplerSamples, pr.SamplerSampleP99Ms)
		fmt.Printf("  pruned %d (rate %.4f), trials %d (resume rate %.4f), snapshot %d B\n",
			pr.CandidatesPruned, pr.PruneRate, pr.TrialsEvaluated, pr.ResumeRate, pr.SnapshotBytes)
		fmt.Printf("  memory/iter over %d steady iters: allocs p50 %.0f (mean %.2f), %.0f B, heap in use %d B\n",
			pr.MemWindowIters, pr.AllocsPerIter, pr.AllocsPerIterMean, pr.BytesPerIter, pr.HeapInuseBytes)
		fmt.Printf("  equilibrium_ok=%v (verified in %.0f ms)\n", pr.EquilibriumOK, ms(verify))
		fmt.Printf("  provenance: ph2 %.0f ms (%+.2f%% overhead), %d iter / %d trial records, replay_ok=%v cert_ok=%v\n",
			pr.ProvPhase2Ms, pr.ProvOverheadPct, pr.ProvIterRecords, pr.ProvTrialRecords,
			pr.ProvReplayOK, pr.ProvCertOK)
		fmt.Printf("  frozen: ph2 %.0f ms (%.2f ms/iter) → speedup %.1fx, identical=%v\n\n",
			pr.RefPhase2Ms, pr.RefIterMeanMs, pr.Speedup, pr.OutputIdentical)

		if !pr.OutputIdentical {
			return fmt.Errorf("game %s: engine output diverged from the frozen reference "+
				"(fingerprint %s vs %016x)", pr.Name, pr.Fingerprint, solutionFingerprint(ref.Solution))
		}
		if !pr.EquilibriumOK {
			return fmt.Errorf("game %s: final state is not a Nash equilibrium", pr.Name)
		}
		if pr.CandidatesPruned == 0 {
			return fmt.Errorf("game %s: admissibility pruning never engaged", pr.Name)
		}
		if pr.TrialsResumed == 0 {
			return fmt.Errorf("game %s: prefix-resume never engaged", pr.Name)
		}
		if !pr.ProvReplayOK {
			return fmt.Errorf("game %s: provenance ledger does not replay to the engine's fingerprint", pr.Name)
		}
		if !pr.ProvCertOK {
			return fmt.Errorf("game %s: equilibrium certificate failed verification", pr.Name)
		}
	}

	if tr != nil {
		tf, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "span timeline (%d spans) written to %s — open in ui.perfetto.dev\n",
			tr.Len(), cfg.tracePath)
	}

	f, err := os.Create(cfg.jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "game record written to %s\n", cfg.jsonPath)
	return nil
}

// meterGameMemory replays the game stepwise (collab.NewGame/Step) on the
// same phase-1 state and samples per-iteration heap-allocation deltas over a
// steady-state window: 200 warm-up iterations grow every recycled buffer to
// its high-water capacity, then up to 256 iterations are measured with
// runtime.ReadMemStats around each Step. Returns the window's median and
// mean allocations per iteration, mean allocated bytes per iteration, the
// live heap at the end of the window, and the window length. The run is
// untimed, so the sampling overhead never touches the reported wall-clocks.
func meterGameMemory(in *model.Instance, p1 []assign.Result, ccfg collab.Config,
	totalIters int) (
	allocsMedian, allocsMean, bytesMean float64, heapInuse int64, window int) {

	ccfg.Tracer, ccfg.TraceParent, ccfg.Obs = nil, 0, nil
	g := collab.NewGame(in, p1, ccfg)
	defer g.Finish()
	// The game length is known from the timed run: warm over the first
	// half (capped) so every recycled buffer reaches its high-water
	// capacity, measure the rest.
	warmIters := totalIters / 2
	if warmIters > 200 {
		warmIters = 200
	}
	const windowIters = 256
	for i := 0; i < warmIters && g.Step(); i++ {
	}
	if g.Over() {
		return 0, 0, 0, 0, 0
	}
	g.Reserve(windowIters + 1)
	allocs := make([]float64, 0, windowIters)
	bytes := make([]float64, 0, windowIters)
	var m0, m1 runtime.MemStats
	for len(allocs) < windowIters {
		runtime.ReadMemStats(&m0)
		if !g.Step() {
			break
		}
		runtime.ReadMemStats(&m1)
		allocs = append(allocs, float64(m1.Mallocs-m0.Mallocs))
		bytes = append(bytes, float64(m1.TotalAlloc-m0.TotalAlloc))
	}
	if len(allocs) == 0 {
		return 0, 0, 0, 0, 0
	}
	heapInuse = int64(m1.HeapInuse)
	allocsMedian = stats.Quantile(allocs, 0.5)
	var sumA, sumB float64
	for i := range allocs {
		sumA += allocs[i]
		sumB += bytes[i]
	}
	n := float64(len(allocs))
	return allocsMedian, sumA / n, sumB / n, heapInuse, len(allocs)
}

// gcPauseMetric is the runtime/metrics name of the cumulative GC
// stop-the-world pause histogram the per-preset window stats difference.
const gcPauseMetric = "/sched/pauses/total/gc:seconds"
