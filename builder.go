package imtao

import (
	"errors"
	"fmt"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
)

// Builder assembles custom CMCTA instances entity by entity — the entry
// point for applications that bring their own centers, workers and tasks
// instead of the paper's generated datasets.
//
// Coordinates are in arbitrary distance units; Speed converts them to time
// (units per hour), and task expiries are in hours. Build partitions the
// scene: each worker and task is attached to its nearest center, exactly as
// the platform of the paper operates.
type Builder struct {
	width, height float64
	speed         float64
	centers       []geo.Point
	tasks         []model.Task
	workers       []model.Worker
	err           error
}

// NewBuilder starts a scenario over a width×height service area with the
// given uniform travel speed in distance units per hour.
func NewBuilder(width, height, speed float64) *Builder {
	b := &Builder{speed: speed}
	if width <= 0 || height <= 0 {
		b.err = errors.New("imtao: service area must have positive dimensions")
	}
	if speed <= 0 {
		b.err = errors.New("imtao: speed must be positive")
	}
	b.width, b.height = width, height
	return b
}

// AddCenter registers a distribution center and returns its ID.
func (b *Builder) AddCenter(x, y float64) CenterID {
	id := CenterID(len(b.centers))
	b.centers = append(b.centers, geo.Pt(x, y))
	return id
}

// AddTask registers a spatial task with a delivery location, an expiration
// deadline in hours, and a reward. It returns the task's ID.
func (b *Builder) AddTask(x, y, expiryHours, reward float64) TaskID {
	id := TaskID(len(b.tasks))
	if expiryHours <= 0 && b.err == nil {
		b.err = fmt.Errorf("imtao: task %d has non-positive expiry", id)
	}
	b.tasks = append(b.tasks, model.Task{
		ID: id, Center: model.NoCenter, Loc: geo.Pt(x, y), Expiry: expiryHours, Reward: reward,
	})
	return id
}

// AddWorker registers a worker with a current location and a capacity
// (maximum number of tasks per delivery run). It returns the worker's ID.
func (b *Builder) AddWorker(x, y float64, maxT int) WorkerID {
	id := WorkerID(len(b.workers))
	if maxT < 0 && b.err == nil {
		b.err = fmt.Errorf("imtao: worker %d has negative capacity", id)
	}
	b.workers = append(b.workers, model.Worker{
		ID: id, Home: model.NoCenter, Loc: geo.Pt(x, y), MaxT: maxT,
	})
	return id
}

// Build validates the scenario, partitions it across centers (paper
// Algorithm 1) and returns the ready-to-run instance.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.centers) == 0 {
		return nil, errors.New("imtao: scenario needs at least one center")
	}
	in := &model.Instance{
		Tasks:   append([]model.Task(nil), b.tasks...),
		Workers: append([]model.Worker(nil), b.workers...),
		Speed:   b.speed,
		Bounds:  geo.NewRect(geo.Pt(0, 0), geo.Pt(b.width, b.height)),
	}
	for i, loc := range b.centers {
		in.Centers = append(in.Centers, model.Center{ID: CenterID(i), Loc: loc})
	}
	out, _, err := core.Partition(in)
	if err != nil {
		return nil, err
	}
	return out, nil
}
