package imtao

import (
	"testing"
	"time"
)

func TestSolveQuickstart(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 100, 30, 5
	rep, err := Solve(p, SeqBDC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assigned <= 0 || rep.Assigned > 100 {
		t.Fatalf("assigned = %d", rep.Assigned)
	}
	if rep.Unfairness < 0 || rep.Unfairness > 1 {
		t.Fatalf("unfairness = %v", rep.Unfairness)
	}
	if len(rep.Ratios) != 5 {
		t.Fatalf("ratios = %v", rep.Ratios)
	}
}

func TestMethodPresets(t *testing.T) {
	if SeqBDC.String() != "Seq-BDC" || OptWoC.String() != "Opt-w/o-C" {
		t.Error("preset names wrong")
	}
	if len(Methods()) != 8 {
		t.Error("Methods() must list 8 presets")
	}
	m, err := ParseMethod("Opt-DC")
	if err != nil || m != OptDC {
		t.Errorf("ParseMethod = %v, %v", m, err)
	}
}

func TestGeneratePartitionRun(t *testing.T) {
	p := DefaultParams(GM)
	p.NumTasks, p.NumWorkers, p.NumCenters = 60, 20, 4
	raw, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(in, SeqWoC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 0 {
		t.Error("w/o-C must not transfer")
	}
	rep2, err := Run(in, SeqRBDC, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := Run(in, SeqRBDC, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Assigned != rep3.Assigned {
		t.Error("WithSeed must make RBDC reproducible")
	}
}

func TestRunWithOptBudget(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 40, 12, 4
	raw, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(in, OptWoC, WithOptBudget(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assigned <= 0 {
		t.Fatal("Opt with budget assigned nothing")
	}
}

func TestBuilderScenario(t *testing.T) {
	b := NewBuilder(1000, 1000, 100)
	c0 := b.AddCenter(250, 500)
	c1 := b.AddCenter(750, 500)
	w0 := b.AddWorker(240, 510, 4)
	b.AddWorker(260, 490, 4)
	t0 := b.AddTask(260, 520, 1.0, 1.0)
	b.AddTask(740, 480, 1.0, 1.0)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.Tasks[t0].Center != c0 {
		t.Errorf("task 0 attached to center %d, want %d", in.Tasks[t0].Center, c0)
	}
	if in.Workers[w0].Home != c0 {
		t.Errorf("worker 0 attached to center %d, want %d", in.Workers[w0].Home, c0)
	}
	rep, err := Run(in, SeqBDC)
	if err != nil {
		t.Fatal(err)
	}
	// The only c1 task has no nearby worker; collaboration may dispatch one
	// of c0's two workers if it can arrive in time. Whatever the outcome,
	// the run must stay consistent.
	if rep.Assigned < 1 {
		t.Fatalf("assigned = %d", rep.Assigned)
	}
	_ = c1
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(0, 10, 5).Build(); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := NewBuilder(10, 10, 0).Build(); err == nil {
		t.Error("zero speed must fail")
	}
	if _, err := NewBuilder(10, 10, 5).Build(); err == nil {
		t.Error("no centers must fail")
	}
	b := NewBuilder(10, 10, 5)
	b.AddCenter(5, 5)
	b.AddTask(1, 1, -1, 1)
	if _, err := b.Build(); err == nil {
		t.Error("negative expiry must fail")
	}
	b2 := NewBuilder(10, 10, 5)
	b2.AddCenter(5, 5)
	b2.AddWorker(1, 1, -1)
	if _, err := b2.Build(); err == nil {
		t.Error("negative capacity must fail")
	}
}

func TestBuilderCollaborationScenario(t *testing.T) {
	// A concrete scenario where collaboration provably helps: c0 has a spare
	// worker, c1 has an extra task only a dispatched worker can take.
	b := NewBuilder(100, 100, 100) // fast couriers
	b.AddCenter(20, 50)
	b.AddCenter(80, 50)
	b.AddWorker(19, 50, 1)  // c0 worker
	b.AddWorker(21, 50, 1)  // c0 spare
	b.AddWorker(79, 50, 1)  // c1 worker
	b.AddTask(22, 52, 1, 1) // c0 task
	b.AddTask(78, 52, 1, 1) // c1 task
	b.AddTask(82, 48, 1, 1) // c1 task (needs a second worker)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	woc, err := Run(in, SeqWoC)
	if err != nil {
		t.Fatal(err)
	}
	bdc, err := Run(in, SeqBDC)
	if err != nil {
		t.Fatal(err)
	}
	if woc.Assigned != 2 {
		t.Fatalf("w/o-C assigned = %d, want 2", woc.Assigned)
	}
	if bdc.Assigned != 3 {
		t.Fatalf("BDC assigned = %d, want 3", bdc.Assigned)
	}
	if bdc.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1", bdc.Transfers)
	}
	if bdc.Unfairness >= woc.Unfairness {
		t.Fatalf("unfairness %v should drop below %v", bdc.Unfairness, woc.Unfairness)
	}
}

func TestFacadeMetricsHelpers(t *testing.T) {
	if got := Unfairness([]float64{0, 1}); got != 1 {
		t.Errorf("Unfairness = %v", got)
	}
	if got := Gini([]float64{1, 1}); got != 0 {
		t.Errorf("Gini = %v", got)
	}
	if got := Jain([]float64{1, 1}); got != 1 {
		t.Errorf("Jain = %v", got)
	}
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 40, 12, 3
	raw, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(in, SeqBDC)
	if err != nil {
		t.Fatal(err)
	}
	u := ComputeUtilization(in, rep.Solution)
	if u.Workers != 12 || u.Active <= 0 || u.CapacityUsed <= 0 {
		t.Fatalf("utilization: %+v", u)
	}
}

func TestCompareMethods(t *testing.T) {
	p := DefaultParams(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 80, 20, 4
	raw, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareMethods(in, nil, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	best, ok := Best(rows)
	if !ok {
		t.Fatal("no best row")
	}
	for _, r := range rows {
		if r.Assigned > best.Assigned {
			t.Fatalf("Best missed a better row: %v vs %v", r, best)
		}
		if r.Method == SeqWoC && r.Transfers != 0 {
			t.Fatal("w/o-C transferred workers")
		}
	}
	if _, ok := Best(nil); ok {
		t.Fatal("Best of empty must report !ok")
	}
}
