// Integration test for the public provenance surface: WithProvenance fills a
// ledger whose replay reconstructs the returned Report's solution exactly,
// and whose certificate re-validates offline.
package imtao

import (
	"bytes"
	"testing"

	"imtao/internal/provenance"
	"imtao/internal/workload"
)

func TestWithProvenanceEndToEnd(t *testing.T) {
	p := workload.ScaleParams(SYN, 2000)
	raw, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	led := NewLedger()
	rep, err := Run(in, SeqBDC, WithProvenance(led), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provenance != led {
		t.Fatal("Report.Provenance is not the attached ledger")
	}
	rr, err := provenance.Replay(led)
	if err != nil {
		t.Fatal(err)
	}
	want := provenance.SolutionFingerprint(rep.Solution)
	if got := provenance.SolutionFingerprint(rr.Solution); got != want {
		t.Fatalf("replay fingerprint %016x, live %016x", got, want)
	}
	if led.Cert == nil {
		t.Fatal("Seq-BDC run produced no certificate")
	}
	if err := led.Cert.Verify(in, rep.Solution); err != nil {
		t.Fatalf("certificate failed offline verification: %v", err)
	}
	var buf bytes.Buffer
	if _, err := led.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := provenance.ReadLedger(&buf); err != nil {
		t.Fatalf("written ledger does not read back: %v", err)
	}
}
